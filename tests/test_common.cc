/**
 * @file
 * Tests for the common layer: stats counters/distributions, the table
 * printer, configuration validation and scheme traits.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

#include "common/config.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "translation/scheme.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    c.inc();
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2);
    d.sample(4);
    d.sample(9);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, HistogramClampsToLastBucket)
{
    Histogram h(4);
    h.add(0);
    h.add(3);
    h.add(99);
    EXPECT_EQ(h.at(0), 1u);
    EXPECT_EQ(h.at(3), 2u);
    // The clamp keeps totals right but is no longer silent: the
    // out-of-range mass is reported separately.
    EXPECT_EQ(h.overflow(), 1u);
    h.add(4, 10);
    EXPECT_EQ(h.overflow(), 11u);
    h.resize(4);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, HistogramInRangeAddsLeaveOverflowZero)
{
    Histogram h(3);
    h.add(0);
    h.add(2, 5);
    EXPECT_EQ(h.overflow(), 0u);
    Histogram empty;
    empty.add(7);  // no buckets: dropped, not counted as overflow
    EXPECT_EQ(empty.overflow(), 0u);
}

TEST(Stats, DistSummaryMergesLikeOneStream)
{
    Distribution a, b;
    a.sample(2);
    a.sample(10);
    b.sample(1);
    b.sample(5);
    DistSummary s = DistSummary::of(a);
    s.merge(DistSummary::of(b));
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.sum, 18.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    // Merging an empty summary changes nothing; merging into an empty
    // one adopts the other side wholesale.
    s.merge(DistSummary{});
    EXPECT_EQ(s.count, 4u);
    DistSummary e;
    e.merge(s);
    EXPECT_EQ(e.count, 4u);
    EXPECT_DOUBLE_EQ(e.min, 1.0);
}

TEST(Stats, GroupRejectsDuplicateNames)
{
    Counter c1, c2;
    Distribution d;
    StatGroup g("dup");
    g.addCounter("events", c1);
    EXPECT_THROW(g.addCounter("events", c2), FatalError);
    // Counters and distributions share one namespace.
    EXPECT_THROW(g.addDistribution("events", d), FatalError);
    StatGroup childA("sub"), childB("sub");
    g.addChild(childA);
    EXPECT_THROW(g.addChild(childB), FatalError);
}

TEST(Stats, GroupMoveTransfersRegistrationsSafely)
{
    Counter c;
    c += 7;
    StatGroup original("engine");
    original.addCounter("events", c);

    StatGroup moved(std::move(original));
    std::ostringstream os;
    moved.dump(os);
    EXPECT_NE(os.str().find("events = 7"), std::string::npos);

    // Dumping the moved-from shell is defined behaviour: it is simply
    // empty, and it can be reused for new registrations.
    std::ostringstream empty;
    original.dump(empty);
    EXPECT_EQ(empty.str().find("events"), std::string::npos);
    Counter other;
    original.addCounter("events", other);  // no duplicate: it is empty

    StatGroup assigned("target");
    assigned = std::move(moved);
    std::ostringstream os2;
    assigned.dump(os2);
    EXPECT_NE(os2.str().find("engine:"), std::string::npos);
    EXPECT_NE(os2.str().find("events = 7"), std::string::npos);
}

TEST(Stats, GroupDumpContainsEntries)
{
    Counter c;
    c += 42;
    Distribution d;
    d.sample(1.5);
    StatGroup group("engine");
    group.addCounter("events", c);
    group.addDistribution("latency", d);
    StatGroup child("sub");
    Counter c2;
    child.addCounter("inner", c2);
    group.addChild(child);
    std::ostringstream os;
    group.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("engine:"), std::string::npos);
    EXPECT_NE(text.find("events = 42"), std::string::npos);
    EXPECT_NE(text.find("latency"), std::string::npos);
    EXPECT_NE(text.find("sub:"), std::string::npos);
}

// ---------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------

TEST(TablePrinter, AlignsColumnsAndPrintsCsv)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("== demo =="), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\na,1\nlonger,22\n");
}

TEST(TablePrinter, RejectsRaggedRows)
{
    Table t("demo");
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), PanicError);
}

TEST(TablePrinter, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(10, 0), "10");
    EXPECT_EQ(Table::num(0.00042, 4), "0.0004");
}

TEST(TablePrinter, FootnotesRenderAfterRows)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", "n/a*"});
    t.footnote("n/a: config X failed to simulate");
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    const std::size_t rowAt = text.find("n/a*");
    const std::size_t noteAt =
        text.find("* n/a: config X failed to simulate");
    EXPECT_NE(rowAt, std::string::npos);
    ASSERT_NE(noteAt, std::string::npos) << text;
    EXPECT_LT(rowAt, noteAt);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("# * n/a: config X failed to simulate\n"),
              std::string::npos)
        << csv.str();
}

TEST(TablePrinter, NoFootnotesMeansUnchangedOutput)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().find('*'), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\na,1\n");
}

// ---------------------------------------------------------------------
// Config + scheme traits
// ---------------------------------------------------------------------

TEST(Config, PaperDefaultsAreValid)
{
    MachineConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.numGlobalPageSets(), 256u);
    EXPECT_EQ(cfg.globalPageSetCapacity(), 128u);
    EXPECT_EQ(cfg.blocksPerPage(), 32u);
    EXPECT_EQ(cfg.flc.numSets(), 512u);
    EXPECT_EQ(cfg.slc.numSets(), 256u);
    EXPECT_EQ(cfg.am.numSets(), 8192u);
}

TEST(Config, ValidationCatchesBadShapes)
{
    MachineConfig cfg;
    cfg.numNodes = 33;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = MachineConfig{};
    cfg.pageBytes = 3000;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = MachineConfig{};
    cfg.flc.blockBytes = 256;  // larger than SLC blocks
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SchemeTraits, MatchSection3)
{
    const SchemeTraits l0 = schemeTraits(Scheme::L0);
    EXPECT_FALSE(l0.flcVirtual);
    EXPECT_TRUE(l0.perNodeTlb);
    EXPECT_EQ(l0.placement, PlacementPolicy::RoundRobin);

    const SchemeTraits l1 = schemeTraits(Scheme::L1);
    EXPECT_TRUE(l1.flcVirtual);
    EXPECT_FALSE(l1.slcVirtual);

    const SchemeTraits l2 = schemeTraits(Scheme::L2);
    EXPECT_TRUE(l2.slcVirtual);
    EXPECT_FALSE(l2.amVirtual);

    const SchemeTraits l3 = schemeTraits(Scheme::L3);
    EXPECT_TRUE(l3.amVirtual);
    EXPECT_TRUE(l3.perNodeTlb);
    EXPECT_EQ(l3.placement, PlacementPolicy::Coloured);

    const SchemeTraits v = schemeTraits(Scheme::VCOMA);
    EXPECT_TRUE(v.amVirtual);
    EXPECT_FALSE(v.perNodeTlb);
    EXPECT_FALSE(v.hasPhysicalAddresses());
    EXPECT_EQ(v.placement, PlacementPolicy::Vcoma);
}

TEST(SchemeTraits, Names)
{
    EXPECT_STREQ(schemeName(Scheme::L0), "L0-TLB");
    EXPECT_STREQ(schemeName(Scheme::VCOMA), "V-COMA");
    EXPECT_FALSE(schemeUsesVirtualAm(Scheme::L2));
    EXPECT_TRUE(schemeUsesVirtualAm(Scheme::L3));
}

TEST(BuilderConfigs, TinyAndBaselineValidate)
{
    for (Scheme s : {Scheme::L0, Scheme::L1, Scheme::L2, Scheme::L3,
                     Scheme::VCOMA}) {
        EXPECT_NO_THROW(baselineConfig(s).validate());
        EXPECT_NO_THROW(tinyConfig(s).validate());
    }
}

// ---------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------

namespace
{

/** Scoped setenv/unsetenv that restores the prior value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            wasSet_ = false;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (wasSet_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

} // namespace

TEST(EnvScaledFlag, NegativeValuesWarnAndUseTheDefault)
{
    // strtoull would happily wrap "-1" to 2^64-1; the knob must not
    // silently turn a typo into a huge interval.
    for (const char *v : {"-1", "-250", "  -3", "-0"}) {
        EnvGuard env("VCOMA_TEST_FLAG", v);
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 4096u) << v;
    }
    // Unchanged behaviour around the fix.
    {
        EnvGuard env("VCOMA_TEST_FLAG", "250");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 250u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "0");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 0u);
    }
}

TEST(EnvScaledFlag, HexValuesParseAsHex)
{
    // "0x10" used to parse as 0 with strtoull base 10 stopping at the
    // 'x', silently disabling the feature the operator asked to tune.
    {
        EnvGuard env("VCOMA_TEST_FLAG", "0x10");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 16u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "0X100");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 256u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "  0x20  ");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 32u);
    }
}

TEST(EnvScaledFlag, TrailingGarbageWarnsAndUsesTheDefault)
{
    // "5x" used to be silently read as 5; a typo must never be
    // misread as a different number.
    for (const char *v : {"5x", "16 pages", "1,000", "2.5", "0x"}) {
        EnvGuard env("VCOMA_TEST_FLAG", v);
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 4096u) << v;
    }
}

TEST(EnvScaledFlag, SurroundingWhitespaceIsTolerated)
{
    {
        EnvGuard env("VCOMA_TEST_FLAG", "  250  ");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 250u);
    }
    {
        EnvGuard env("VCOMA_TEST_FLAG", "\t7\n");
        EXPECT_EQ(envScaledFlag("VCOMA_TEST_FLAG", 4096), 7u);
    }
}
