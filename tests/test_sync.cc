/** @file Tests for barrier and lock synchronisation. */

#include <gtest/gtest.h>

#include "sim/sync.hh"

using namespace vcoma;

namespace
{

TimingConfig
timing()
{
    TimingConfig t;
    t.barrierRelease = 100;
    t.lockTransfer = 40;
    return t;
}

} // namespace

TEST(Sync, BarrierReleasesAtMaxArrivalPlusCost)
{
    SyncManager sync(3, timing());
    EXPECT_FALSE(sync.arriveBarrier(1, 0, 500).has_value());
    EXPECT_FALSE(sync.arriveBarrier(1, 1, 900).has_value());
    EXPECT_EQ(sync.parked(), 2u);
    auto release = sync.arriveBarrier(1, 2, 700);
    ASSERT_TRUE(release.has_value());
    EXPECT_EQ(release->releaseAt, 1000u);  // max(900) + 100
    EXPECT_EQ(release->waiters.size(), 3u);
    EXPECT_EQ(sync.parked(), 0u);
    EXPECT_EQ(sync.barrierEpisodes.value(), 1u);
}

TEST(Sync, BarrierIdReusableAcrossEpisodes)
{
    SyncManager sync(2, timing());
    sync.arriveBarrier(5, 0, 0);
    ASSERT_TRUE(sync.arriveBarrier(5, 1, 10).has_value());
    // Same id again: a fresh episode.
    EXPECT_FALSE(sync.arriveBarrier(5, 1, 100).has_value());
    ASSERT_TRUE(sync.arriveBarrier(5, 0, 200).has_value());
}

TEST(Sync, DoubleArrivalPanics)
{
    SyncManager sync(3, timing());
    sync.arriveBarrier(1, 0, 0);
    EXPECT_THROW(sync.arriveBarrier(1, 0, 10), PanicError);
}

TEST(Sync, UncontendedLockGrantsImmediately)
{
    SyncManager sync(2, timing());
    auto grant = sync.acquireLock(7, 0, 1000);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(*grant, 1040u);
    EXPECT_EQ(sync.lockContended.value(), 0u);
}

TEST(Sync, ContendedLockQueuesFifo)
{
    SyncManager sync(3, timing());
    sync.acquireLock(7, 0, 0);
    EXPECT_FALSE(sync.acquireLock(7, 1, 100).has_value());
    EXPECT_FALSE(sync.acquireLock(7, 2, 200).has_value());
    EXPECT_EQ(sync.parked(), 2u);

    auto g1 = sync.releaseLock(7, 0, 1000);
    ASSERT_TRUE(g1.has_value());
    EXPECT_EQ(g1->cpu, 1u);
    EXPECT_EQ(g1->arrivedAt, 100u);
    EXPECT_EQ(g1->grantedAt, 1040u);

    auto g2 = sync.releaseLock(7, 1, 2000);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->cpu, 2u);
    EXPECT_EQ(sync.parked(), 0u);

    EXPECT_FALSE(sync.releaseLock(7, 2, 3000).has_value());
}

TEST(Sync, ReleaseErrorsDetected)
{
    SyncManager sync(2, timing());
    EXPECT_THROW(sync.releaseLock(9, 0, 0), PanicError);
    sync.acquireLock(9, 0, 0);
    EXPECT_THROW(sync.releaseLock(9, 1, 10), PanicError);
}

TEST(Sync, IndependentLocksDoNotInteract)
{
    SyncManager sync(2, timing());
    ASSERT_TRUE(sync.acquireLock(1, 0, 0).has_value());
    ASSERT_TRUE(sync.acquireLock(2, 1, 0).has_value());
    EXPECT_EQ(sync.lockContended.value(), 0u);
}
