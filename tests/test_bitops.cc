/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

using namespace vcoma;

TEST(Bitops, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
    EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOf2((std::uint64_t{1} << 63) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(~std::uint64_t{0}), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(Bitops, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 4095u);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(65), ~std::uint64_t{0});
}

TEST(Bitops, Bits)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFULL, 60, 4), 0xFu);
    EXPECT_EQ(bits(0, 5, 10), 0u);
}

TEST(Bitops, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(129, 64), 128u);
}

/** Round-trip property: bits() of a composed value recovers fields. */
TEST(Bitops, ComposeDecomposeProperty)
{
    for (unsigned lo = 0; lo < 32; lo += 3) {
        for (unsigned width = 1; width <= 16; width += 5) {
            const std::uint64_t field = mask(width) & 0x5A5A5A5Au;
            const std::uint64_t value = field << lo;
            EXPECT_EQ(bits(value, lo, width), field)
                << "lo=" << lo << " width=" << width;
        }
    }
}
