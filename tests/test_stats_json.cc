/**
 * @file
 * Observability-layer tests: the JSON stats exporter round-trips
 * through the in-tree parser and agrees with the RunStats aggregates,
 * the env-gated JSONL/trace outputs appear exactly when their
 * variables are set, the Chrome trace is valid JSON with per-track
 * monotonic timestamps, and a shared V-COMA workload evidences the
 * paper's three DLB effects (filtering, sharing, prefetching).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <unistd.h>

#include "common/json.hh"
#include "sim/event_trace.hh"
#include "sim/machine.hh"
#include "sim/run_stats_json.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/** Set an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        ::setenv(name, value.c_str(), 1);
    }

    ~ScopedEnv()
    {
        if (saved_.empty())
            ::unsetenv(name_);
        else
            ::setenv(name_, saved_.c_str(), 1);
    }

  private:
    const char *name_;
    std::string saved_;
};

/** A per-test temp file path, removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &stem)
        : path_((std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove(path_);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunStats
runTinyVcoma()
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.checkLevel = 0;
    Machine machine(cfg);
    WorkloadParams wp;
    wp.threads = cfg.numNodes;
    wp.scale = 0.2;
    auto w = makeWorkload("UNIFORM", wp);
    return machine.run(*w);
}

} // namespace

TEST(JsonParser, ParsesScalarsContainersAndEscapes)
{
    const JsonValue v = JsonValue::parse(
        R"({"a": [1, -2.5, true, null], "s": "x\n\u0041\"", "n": {}})");
    EXPECT_EQ(v.at("a").size(), 4u);
    EXPECT_EQ(v.at("a").at(0).asUint(), 1u);
    EXPECT_DOUBLE_EQ(v.at("a").at(1).asNumber(), -2.5);
    EXPECT_TRUE(v.at("a").at(2).asBool());
    EXPECT_TRUE(v.at("a").at(3).isNull());
    EXPECT_EQ(v.at("s").asString(), "x\nA\"");
    EXPECT_TRUE(v.at("n").isObject());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse("{"), JsonError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonError);
    EXPECT_THROW(JsonValue::parse("01"), JsonError);
    EXPECT_THROW(JsonValue::parse("\"\\x\""), JsonError);
    EXPECT_THROW(JsonValue::parse("1 2"), JsonError);
}

TEST(JsonParser, EscapeProducesParseableStrings)
{
    const std::string nasty = "quote\" back\\ ctrl\x01 tab\t";
    const JsonValue v =
        JsonValue::parse("\"" + jsonEscape(nasty) + "\"");
    EXPECT_EQ(v.asString(), nasty);
}

TEST(StatsJson, WriterAgreesWithRunStatsAggregates)
{
    const RunStats stats = runTinyVcoma();

    std::ostringstream os;
    writeRunStatsJson(os, stats);
    const JsonValue doc = JsonValue::parse(os.str());

    EXPECT_EQ(doc.at("schema").asUint(), 1u);
    EXPECT_EQ(doc.at("workload").asString(), stats.workload);
    EXPECT_EQ(doc.at("scheme").asString(), "V-COMA");
    EXPECT_EQ(doc.at("numNodes").asUint(), stats.numNodes);
    EXPECT_EQ(doc.at("execTime").asUint(), stats.execTime);

    const JsonValue &totals = doc.at("totals");
    EXPECT_EQ(totals.at("refs").asUint(), stats.totalRefs());
    EXPECT_EQ(totals.at("xlatStall").asUint(), stats.totalXlatStall());
    EXPECT_NEAR(doc.at("xlatOverTotalStallPct").asNumber(),
                stats.xlatOverTotalStallPct(), 1e-9);

    const JsonValue &cpus = doc.at("cpus");
    ASSERT_EQ(cpus.size(), stats.cpus.size());
    std::uint64_t refSum = 0;
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        const JsonValue &c = cpus.at(i);
        refSum += c.at("refs").asUint();
        EXPECT_EQ(c.at("accounted").asUint(), stats.cpus[i].accounted());
        EXPECT_EQ(c.at("finish").asUint(), stats.cpus[i].finish);
        // The cycle buckets must partition the accounted time.
        const std::uint64_t buckets =
            c.at("busy").asUint() + c.at("sync").asUint() +
            c.at("locStall").asUint() + c.at("remStall").asUint() +
            c.at("xlatStall").asUint();
        EXPECT_EQ(buckets, c.at("accounted").asUint());
    }
    EXPECT_EQ(refSum, stats.totalRefs());

    EXPECT_EQ(doc.at("shadow").size(), stats.shadow.size());
    const JsonValue &dlb = doc.at("dlb");
    EXPECT_EQ(dlb.at("filteredRefs").asUint(), stats.dlbFilteredRefs);
    EXPECT_EQ(dlb.at("sharedHits").asUint(), stats.dlbSharedHits);
    EXPECT_EQ(dlb.at("prefetchedFills").asUint(),
              stats.dlbPrefetchedFills);
    EXPECT_EQ(dlb.at("requestersPerEntry").at("count").asUint(),
              stats.dlbRequestersPerEntry.count);
    const JsonValue &lat = doc.at("latency");
    EXPECT_EQ(lat.at("remoteRead").at("count").asUint(),
              stats.remoteReadLatency.count);
}

TEST(StatsJson, NonFiniteNumbersSerialiseAsNull)
{
    // %.17g renders non-finite doubles as "inf"/"nan", which are not
    // JSON. The writer must emit null instead so the line still
    // parses (JSON has no non-finite literals).
    RunStats stats;
    stats.workload = "synthetic";
    stats.scheme = Scheme::VCOMA;
    stats.numNodes = 1;
    stats.cpus.resize(1);
    stats.pressureProfile = {
        0.5, std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()};

    std::ostringstream os;
    writeRunStatsJson(os, stats);
    const std::string line = os.str();
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;

    const JsonValue doc = JsonValue::parse(line);
    const JsonValue &profile = doc.at("pressureProfile");
    ASSERT_EQ(profile.size(), 4u);
    EXPECT_NEAR(profile.at(0).asNumber(), 0.5, 1e-12);
    EXPECT_TRUE(profile.at(1).isNull());
    EXPECT_TRUE(profile.at(2).isNull());
    EXPECT_TRUE(profile.at(3).isNull());
}

TEST(StatsJson, ExportIsGatedOnEnvVar)
{
    const RunStats stats = runTinyVcoma();
    // Variable unset: no export, no file.
    ::unsetenv(statsJsonEnvVar);
    EXPECT_FALSE(exportRunStatsJsonFromEnv(stats));

    TempFile file("vcoma_stats_jsonl");
    ScopedEnv env(statsJsonEnvVar, file.path());
    EXPECT_TRUE(exportRunStatsJsonFromEnv(stats));
    EXPECT_TRUE(exportRunStatsJsonFromEnv(stats));  // appends

    std::ifstream in(file.path());
    std::string line;
    unsigned lines = 0;
    while (std::getline(in, line)) {
        const JsonValue doc = JsonValue::parse(line);
        EXPECT_EQ(doc.at("totals").at("refs").asUint(),
                  stats.totalRefs());
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

TEST(StatsJson, MachineRunWritesJsonlWhenEnabled)
{
    TempFile file("vcoma_stats_machine_jsonl");
    ScopedEnv env(statsJsonEnvVar, file.path());
    const RunStats stats = runTinyVcoma();

    std::ifstream in(file.path());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const JsonValue doc = JsonValue::parse(line);
    EXPECT_EQ(doc.at("totals").at("refs").asUint(), stats.totalRefs());
    EXPECT_FALSE(std::getline(in, line));  // exactly one run, one line
}

TEST(StatsJson, TraceIsValidJsonWithMonotonicTracks)
{
    TempFile file("vcoma_trace_json");
    ScopedEnv env(EventTracer::envVar, file.path());
    runTinyVcoma();

    std::ifstream in(file.path());
    ASSERT_TRUE(in) << "trace file was not written";
    std::stringstream buf;
    buf << in.rdbuf();
    const JsonValue doc = JsonValue::parse(buf.str());

    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), 0u);

    // Per (pid, tid) track, timestamps must never go backwards, and
    // every non-metadata event carries the required fields.
    std::map<std::pair<std::uint64_t, std::uint64_t>, double> last;
    bool sawCoherence = false;
    for (const JsonValue &e : events.asArray()) {
        const std::string &ph = e.at("ph").asString();
        if (ph == "M")
            continue;
        ASSERT_TRUE(ph == "X" || ph == "i") << "unexpected ph " << ph;
        const auto track = std::make_pair(e.at("pid").asUint(),
                                          e.at("tid").asUint());
        const double ts = e.at("ts").asNumber();
        auto it = last.find(track);
        if (it != last.end())
            EXPECT_GE(ts, it->second);
        last[track] = ts;
        const std::string &name = e.at("name").asString();
        if (name == "remoteRead" || name == "remoteWrite" ||
            name == "upgrade")
            sawCoherence = true;
    }
    EXPECT_TRUE(sawCoherence)
        << "no coherence transactions in the trace";
}

TEST(StatsJson, SharedVcomaWorkloadEvidencesDlbEffects)
{
    const RunStats stats = runTinyVcoma();
    ASSERT_GT(stats.totalRefs(), 0u);

    // Filtering: the home DLBs only see the traffic the local caches
    // and AMs could not absorb — and together the two sides account
    // for every reference (Section 5.2).
    EXPECT_GT(stats.dlbFilteredRefs, 0u);
    EXPECT_EQ(stats.dlbFilteredRefs + stats.tlbAccesses,
              stats.totalRefs());

    // Sharing: with all nodes touching the same pages, entries serve
    // requesters other than the node that filled them.
    EXPECT_GT(stats.dlbSharedHits, 0u);
    EXPECT_GT(stats.dlbRequestersPerEntry.count, 0u);
    EXPECT_GT(stats.dlbRequestersPerEntry.max, 1.0);

    // Prefetching: some fills went on to serve another node.
    EXPECT_GT(stats.dlbPrefetchedFills, 0u);
    EXPECT_LE(stats.dlbPrefetchedFills,
              stats.dlbRequestersPerEntry.count);
}

TEST(StatsJson, PerNodeTlbSchemesReportNoDlbEffects)
{
    MachineConfig cfg = tinyConfig(Scheme::L2);
    cfg.checkLevel = 0;
    Machine machine(cfg);
    WorkloadParams wp;
    wp.threads = cfg.numNodes;
    wp.scale = 0.2;
    auto w = makeWorkload("UNIFORM", wp);
    const RunStats stats = machine.run(*w);

    EXPECT_EQ(stats.dlbFilteredRefs, 0u);
    EXPECT_EQ(stats.dlbSharedHits, 0u);
    EXPECT_EQ(stats.dlbPrefetchedFills, 0u);
    EXPECT_EQ(stats.dlbRequestersPerEntry.count, 0u);
}
