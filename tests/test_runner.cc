/** @file Tests for the experiment runner and its disk cache. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/experiments.hh"
#include "harness/runner.hh"
#include "translation/scheme.hh"

using namespace vcoma;

namespace
{

ExperimentConfig
tinyExperiment()
{
    ExperimentConfig cfg;
    cfg.workload = "UNIFORM";
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.05;
    return cfg;
}

/** A small batch of distinct, fast configs for the runAll tests. */
std::vector<ExperimentConfig>
tinyBatch()
{
    std::vector<ExperimentConfig> cfgs;
    for (const char *name : {"UNIFORM", "STRIDE", "HOTSPOT"}) {
        for (Scheme s : {Scheme::VCOMA, Scheme::L0}) {
            ExperimentConfig cfg = tinyExperiment();
            cfg.workload = name;
            cfg.scheme = s;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

/** Every field of the stats sheet must match bit for bit. */
void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.parameters, b.parameters);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.sharedBytes, b.sharedBytes);
    EXPECT_EQ(a.execTime, b.execTime);
    ASSERT_EQ(a.cpus.size(), b.cpus.size());
    for (std::size_t i = 0; i < a.cpus.size(); ++i) {
        EXPECT_EQ(a.cpus[i].refs, b.cpus[i].refs);
        EXPECT_EQ(a.cpus[i].busy, b.cpus[i].busy);
        EXPECT_EQ(a.cpus[i].sync, b.cpus[i].sync);
        EXPECT_EQ(a.cpus[i].locStall, b.cpus[i].locStall);
        EXPECT_EQ(a.cpus[i].remStall, b.cpus[i].remStall);
        EXPECT_EQ(a.cpus[i].xlatStall, b.cpus[i].xlatStall);
        EXPECT_EQ(a.cpus[i].finish, b.cpus[i].finish);
    }
    ASSERT_EQ(a.shadow.size(), b.shadow.size());
    for (std::size_t i = 0; i < a.shadow.size(); ++i) {
        EXPECT_EQ(a.shadow[i].demandAccesses, b.shadow[i].demandAccesses);
        EXPECT_EQ(a.shadow[i].demandMisses, b.shadow[i].demandMisses);
        EXPECT_EQ(a.shadow[i].writebackMisses,
                  b.shadow[i].writebackMisses);
    }
    EXPECT_EQ(a.tlbAccesses, b.tlbAccesses);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.pressureProfile, b.pressureProfile);
    EXPECT_EQ(a.flcMisses, b.flcMisses);
    EXPECT_EQ(a.slcMisses, b.slcMisses);
    EXPECT_EQ(a.amHits, b.amHits);
    EXPECT_EQ(a.amMisses, b.amMisses);
    EXPECT_EQ(a.remoteReads, b.remoteReads);
    EXPECT_EQ(a.remoteWrites, b.remoteWrites);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.injections, b.injections);
    EXPECT_EQ(a.pageFaults, b.pageFaults);
    EXPECT_EQ(a.swapOuts, b.swapOuts);
    EXPECT_EQ(a.requestMessages, b.requestMessages);
    EXPECT_EQ(a.blockMessages, b.blockMessages);
}

struct TempDir
{
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("vcoma_test_cache_" + std::to_string(::getpid()));
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::filesystem::path path;
};

/** Scoped setenv/unsetenv that restores the previous value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            wasSet_ = false;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (wasSet_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

} // namespace

TEST(ExperimentConfig, KeyEncodesEveryField)
{
    ExperimentConfig a = tinyExperiment();
    ExperimentConfig b = a;
    EXPECT_EQ(a.key(), b.key());
    b.tlbEntries = 16;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.scheme = Scheme::L0;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.writebacksAccessTlb = false;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.raytraceV2 = true;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.scale = 2.0;
    EXPECT_NE(a.key(), b.key());
}

TEST(Runner, MemoisesWithinProcess)
{
    Runner runner("");  // no disk cache
    const RunStats &a = runner.run(tinyExperiment());
    const RunStats &b = runner.run(tinyExperiment());
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(runner.executed(), 1u);
}

TEST(Runner, DiskCacheRoundTripsAllFields)
{
    TempDir dir;
    RunStats first;
    {
        Runner runner(dir.path.string());
        first = runner.run(tinyExperiment());
        EXPECT_EQ(runner.executed(), 1u);
    }
    {
        Runner runner(dir.path.string());
        const RunStats &again = runner.run(tinyExperiment());
        EXPECT_EQ(runner.executed(), 0u) << "must come from disk";
        EXPECT_EQ(again.workload, first.workload);
        EXPECT_EQ(again.parameters, first.parameters);
        EXPECT_EQ(again.scheme, first.scheme);
        EXPECT_EQ(again.numNodes, first.numNodes);
        EXPECT_EQ(again.execTime, first.execTime);
        EXPECT_EQ(again.totalRefs(), first.totalRefs());
        EXPECT_EQ(again.totalSync(), first.totalSync());
        ASSERT_EQ(again.shadow.size(), first.shadow.size());
        for (std::size_t i = 0; i < first.shadow.size(); ++i) {
            EXPECT_EQ(again.shadow[i].demandMisses,
                      first.shadow[i].demandMisses);
            EXPECT_EQ(again.shadow[i].writebackMisses,
                      first.shadow[i].writebackMisses);
        }
        EXPECT_EQ(again.tlbMisses, first.tlbMisses);
        EXPECT_EQ(again.pressureProfile, first.pressureProfile);
        EXPECT_EQ(again.remoteReads, first.remoteReads);
        EXPECT_EQ(again.blockMessages, first.blockMessages);
        EXPECT_EQ(again.amMisses, first.amMisses);
    }
}

TEST(Runner, CorruptCacheFileIsIgnored)
{
    TempDir dir;
    Runner first(dir.path.string());
    first.run(tinyExperiment());
    // Corrupt every cache file.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        std::ofstream out(entry.path());
        out << "garbage\n";
    }
    Runner second(dir.path.string());
    second.run(tinyExperiment());
    EXPECT_EQ(second.executed(), 1u);
}

TEST(Runner, WrongMagicCacheFileIsRejected)
{
    TempDir dir;
    Runner first(dir.path.string());
    first.run(tinyExperiment());
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        std::ofstream out(entry.path());
        out << "vcoma-cache-v2\nworkload UNIFORM\nend\n";
    }
    Runner second(dir.path.string());
    second.run(tinyExperiment());
    EXPECT_EQ(second.executed(), 1u) << "old-format file must re-run";
}

TEST(Runner, TruncatedCacheFileIsRejected)
{
    TempDir dir;
    Runner first(dir.path.string());
    first.run(tinyExperiment());
    // Drop everything from the "end" marker on: a writer that died
    // mid-write (or a torn copy) must not be served.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        std::ifstream in(entry.path());
        std::ostringstream kept;
        std::string line;
        while (std::getline(in, line) && line != "end")
            kept << line << "\n";
        in.close();
        std::ofstream out(entry.path());
        out << kept.str();
    }
    Runner second(dir.path.string());
    second.run(tinyExperiment());
    EXPECT_EQ(second.executed(), 1u) << "truncated file must re-run";
}

TEST(Runner, StoreLeavesNoTempFiles)
{
    TempDir dir;
    Runner runner(dir.path.string());
    runner.run(tinyExperiment());
    unsigned files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        ++files;
        EXPECT_EQ(entry.path().extension(), ".txt")
            << entry.path() << " looks like an orphaned temp file";
    }
    EXPECT_EQ(files, 1u);
}

TEST(Runner, RunAllMatchesSerialBitIdentical)
{
    const std::vector<ExperimentConfig> cfgs = tinyBatch();

    Runner serial("");
    std::vector<const RunStats *> expected;
    for (const auto &cfg : cfgs)
        expected.push_back(&serial.run(cfg));

    EnvGuard env("VCOMA_JOBS", "4");
    Runner parallel("");
    const auto results = parallel.runAll(cfgs);
    EXPECT_EQ(parallel.executed(), cfgs.size());

    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(results[i]->workload,
                  serial.run(cfgs[i]).workload)
            << "submission order not preserved at " << i;
        expectSameStats(*results[i], *expected[i]);
    }
}

TEST(Runner, RunAllDedupsWithinBatch)
{
    std::vector<ExperimentConfig> cfgs{tinyExperiment(),
                                       tinyExperiment(),
                                       tinyExperiment()};
    EnvGuard env("VCOMA_JOBS", "4");
    Runner runner("");
    const auto results = runner.runAll(cfgs);
    EXPECT_EQ(runner.executed(), 1u);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[1], results[2]);
}

TEST(Runner, RunAllPopulatesAndReadsDiskCache)
{
    TempDir dir;
    const std::vector<ExperimentConfig> cfgs = tinyBatch();
    EnvGuard env("VCOMA_JOBS", "4");
    {
        Runner runner(dir.path.string());
        runner.runAll(cfgs);
        EXPECT_EQ(runner.executed(), cfgs.size());
    }
    Runner again(dir.path.string());
    const auto results = again.runAll(cfgs);
    EXPECT_EQ(again.executed(), 0u) << "must come from disk";
    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_EQ(results[i]->workload, cfgs[i].workload);
}

TEST(Runner, ConcurrentRunCallsAreSafe)
{
    const std::vector<ExperimentConfig> cfgs = tinyBatch();
    Runner runner("");
    std::vector<std::thread> threads;
    for (const auto &cfg : cfgs)
        threads.emplace_back([&runner, cfg] { runner.run(cfg); });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(runner.executed(), cfgs.size());
    // Everything is memoised now; a second pass must be free.
    for (const auto &cfg : cfgs)
        runner.run(cfg);
    EXPECT_EQ(runner.executed(), cfgs.size());
}

TEST(Runner, EnvScaleParsesStrictly)
{
    {
        EnvGuard env("VCOMA_SCALE", "2.5");
        EXPECT_DOUBLE_EQ(Runner::envScale(), 2.5);
    }
    {
        EnvGuard env("VCOMA_SCALE", "fast");
        EXPECT_DOUBLE_EQ(Runner::envScale(), 1.0);
    }
    {
        EnvGuard env("VCOMA_SCALE", "2.5x");
        EXPECT_DOUBLE_EQ(Runner::envScale(), 1.0);
    }
    {
        EnvGuard env("VCOMA_SCALE", "-3");
        EXPECT_DOUBLE_EQ(Runner::envScale(), 1.0);
    }
    {
        EnvGuard env("VCOMA_SCALE", nullptr);
        EXPECT_DOUBLE_EQ(Runner::envScale(), 1.0);
    }
}

TEST(Runner, NoCacheAcceptsConventionalTruthyValues)
{
    EnvGuard cacheDir("VCOMA_CACHE_DIR", nullptr);
    for (const char *truthy : {"1", "true", "YES", "on"}) {
        EnvGuard env("VCOMA_NO_CACHE", truthy);
        EXPECT_EQ(Runner::defaultCacheDir(), "") << truthy;
    }
    for (const char *falsy : {"0", "false", "no", "OFF", ""}) {
        EnvGuard env("VCOMA_NO_CACHE", falsy);
        EXPECT_EQ(Runner::defaultCacheDir(), ".vcoma_cache") << falsy;
    }
}

TEST(Runner, RunAllCompletesPastFailingConfig)
{
    // One config names a workload that does not exist, so its
    // simulation dies in makeWorkload; the sweep must still complete
    // every other config and report the failure.
    std::vector<ExperimentConfig> cfgs = tinyBatch();
    const std::size_t bad = 2;
    cfgs[bad].workload = "NO_SUCH_WORKLOAD";

    EnvGuard strict("VCOMA_STRICT", nullptr);
    EnvGuard env("VCOMA_JOBS", "4");
    Runner runner("");
    const auto results = runner.runAll(cfgs);

    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (i == bad) {
            EXPECT_EQ(results[i], nullptr);
        } else {
            ASSERT_NE(results[i], nullptr) << "config " << i;
            EXPECT_EQ(results[i]->workload, cfgs[i].workload);
        }
    }

    const auto failures = runner.failures();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].key, cfgs[bad].key());
    EXPECT_NE(failures[0].error.find("NO_SUCH_WORKLOAD"),
              std::string::npos)
        << failures[0].error;
    EXPECT_NE(failures[0].error.find(schemeName(cfgs[bad].scheme)),
              std::string::npos)
        << failures[0].error;
}

TEST(Runner, RunRethrowsRecordedFailureWithoutReExecuting)
{
    ExperimentConfig bad = tinyExperiment();
    bad.workload = "NO_SUCH_WORKLOAD";

    EnvGuard strict("VCOMA_STRICT", nullptr);
    Runner runner("");
    EXPECT_EQ(runner.tryRun(bad), nullptr);
    const unsigned executedOnce = runner.executed();
    EXPECT_THROW(runner.run(bad), SimulationError);
    EXPECT_EQ(runner.tryRun(bad), nullptr);
    EXPECT_EQ(runner.executed(), executedOnce)
        << "a recorded failure must not re-execute";
}

TEST(Runner, StrictModeFailsFast)
{
    std::vector<ExperimentConfig> cfgs = tinyBatch();
    cfgs[0].workload = "NO_SUCH_WORKLOAD";

    EnvGuard strict("VCOMA_STRICT", "1");
    EnvGuard env("VCOMA_JOBS", "2");
    Runner runner("");
    EXPECT_THROW(runner.runAll(cfgs), SimulationError);
}

TEST(Runner, TryRunReturnsStatsOnSuccess)
{
    Runner runner("");
    const RunStats *stats = runner.tryRun(tinyExperiment());
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats, &runner.run(tinyExperiment()));
    EXPECT_TRUE(runner.failures().empty());
}

TEST(RunStats, DerivedMetrics)
{
    Runner runner("");
    const RunStats &stats = runner.run(tinyExperiment());
    // Miss rate: percentage of total refs.
    const double rate = stats.missRatePct(8, 0, true);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 100.0);
    // Misses per node consistent with the raw point.
    const auto &p = stats.shadowPoint(8, 0);
    EXPECT_DOUBLE_EQ(stats.missesPerNode(8, 0, false),
                     static_cast<double>(p.demandMisses) / 32.0);
    EXPECT_THROW(stats.shadowPoint(9999, 0), FatalError);
}

TEST(Experiments, TagOverheadMatchesPaperNumbers)
{
    // Section 6: 2-3 extra tag bytes => 1.5%-2.5% of AM for 128 B
    // blocks, 3%-4.5% for 64 B, 6%-9% for 32 B.
    EXPECT_NEAR(100 * virtualTagOverhead(128, 2), 1.56, 0.1);
    EXPECT_NEAR(100 * virtualTagOverhead(128, 3), 2.34, 0.2);
    EXPECT_NEAR(100 * virtualTagOverhead(64, 3), 4.69, 0.25);
    EXPECT_NEAR(100 * virtualTagOverhead(32, 2), 6.25, 0.1);
    EXPECT_NEAR(100 * virtualTagOverhead(32, 3), 9.38, 0.5);
    const Table t = tagOverheadTable();
    EXPECT_EQ(t.title().substr(0, 9), "Section 6");
}

TEST(Experiments, Table1ListsAllBenchmarks)
{
    const Table t = table1Benchmarks(0.05);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    for (const auto &name : paperBenchmarks())
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

namespace
{

/** Create @p path with @p bytes of filler and an mtime @p ageHours old. */
void
plantCacheFile(const std::filesystem::path &path, std::size_t bytes,
               int ageHours)
{
    std::ofstream out(path);
    out << std::string(bytes, 'x');
    out.close();
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now() -
                  std::chrono::hours(ageHours));
}

} // namespace

TEST(Runner, PruneCacheKeepsNewestEntriesWithinBudget)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    // Four 1000-byte entries, oldest first.
    plantCacheFile(tmp.path / "a.txt", 1000, 4);
    plantCacheFile(tmp.path / "b.txt", 1000, 3);
    plantCacheFile(tmp.path / "c.txt", 1000, 2);
    plantCacheFile(tmp.path / "d.txt", 1000, 1);

    EXPECT_EQ(Runner::pruneCache(tmp.path.string(), 2000), 2u);
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "a.txt"));
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "b.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "c.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "d.txt"));
}

TEST(Runner, PruneCacheIsANoopUnderBudget)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    plantCacheFile(tmp.path / "a.txt", 100, 2);
    plantCacheFile(tmp.path / "b.txt", 100, 1);
    EXPECT_EQ(Runner::pruneCache(tmp.path.string(), 200), 0u);
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "a.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "b.txt"));
    // A missing directory is quietly nothing to prune.
    EXPECT_EQ(Runner::pruneCache((tmp.path / "absent").string(), 1),
              0u);
}

TEST(Runner, PruneCacheNeverTouchesForeignFiles)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path / "subdir");
    plantCacheFile(tmp.path / "old.txt", 5000, 2);
    // Not cache entries: wrong extension, a staging temp (its
    // extension is the pid suffix, not .txt), and a nested file.
    plantCacheFile(tmp.path / "README.md", 100, 3);
    plantCacheFile(tmp.path / "entry.txt.tmp.1234", 100, 3);
    plantCacheFile(tmp.path / "subdir" / "nested.txt", 100, 3);

    EXPECT_EQ(Runner::pruneCache(tmp.path.string(), 1), 1u);
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "old.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "README.md"));
    EXPECT_TRUE(
        std::filesystem::exists(tmp.path / "entry.txt.tmp.1234"));
    EXPECT_TRUE(
        std::filesystem::exists(tmp.path / "subdir" / "nested.txt"));
}

TEST(Runner, PruneCacheBreaksEqualMtimesByName)
{
    // Entries written within one batch sweep routinely share an mtime
    // (filesystem timestamps are coarse); the victim choice must then
    // depend on the file name only, never on directory iteration
    // order. Equal-mtime entries survive in name order: the earliest
    // names are kept, the latest pruned.
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    // Deliberately planted in scrambled order, then pinned to one
    // shared mtime (plantCacheFile's per-call "now" would differ by
    // microseconds and dodge the tie).
    const auto stamp = std::filesystem::file_time_type::clock::now() -
                       std::chrono::hours(1);
    for (const char *name : {"c.txt", "a.txt", "d.txt", "b.txt"}) {
        plantCacheFile(tmp.path / name, 1000, 1);
        std::filesystem::last_write_time(tmp.path / name, stamp);
    }

    EXPECT_EQ(Runner::pruneCache(tmp.path.string(), 2000), 2u);
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "a.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "b.txt"));
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "c.txt"));
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "d.txt"));
}

TEST(Runner, PruneCacheMtimeStillBeatsName)
{
    // The name is only the tie-break: a strictly older entry is
    // pruned first however late its name sorts.
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    plantCacheFile(tmp.path / "z_old.txt", 1000, 5);
    plantCacheFile(tmp.path / "a_new.txt", 1000, 1);
    EXPECT_EQ(Runner::pruneCache(tmp.path.string(), 1000), 1u);
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "z_old.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "a_new.txt"));
}

TEST(Runner, PruneTracesOnlyTouchesTraceFiles)
{
    // The trace dir shares the pruning policy but its own extension:
    // *.vctrace files are fair game, anything else is not.
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    plantCacheFile(tmp.path / "old.vctrace", 5000, 3);
    plantCacheFile(tmp.path / "new.vctrace", 5000, 1);
    plantCacheFile(tmp.path / "entry.txt", 100, 9);
    plantCacheFile(tmp.path / "trace.vctrace.tmp.1234", 100, 9);

    EXPECT_EQ(Runner::pruneTraces(tmp.path.string(), 5000), 1u);
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "old.vctrace"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "new.vctrace"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "entry.txt"));
    EXPECT_TRUE(std::filesystem::exists(
        tmp.path / "trace.vctrace.tmp.1234"));
}

TEST(Runner, PruneTracesBreaksEqualMtimesByName)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    const auto stamp = std::filesystem::file_time_type::clock::now() -
                       std::chrono::hours(1);
    for (const char *name : {"beta.vctrace", "alpha.vctrace"}) {
        plantCacheFile(tmp.path / name, 1000, 1);
        std::filesystem::last_write_time(tmp.path / name, stamp);
    }
    EXPECT_EQ(Runner::pruneTraces(tmp.path.string(), 1000), 1u);
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "alpha.vctrace"));
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "beta.vctrace"));
}

TEST(Runner, ConstructionPrunesAnOversizedTraceDir)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    plantCacheFile(tmp.path / "old.vctrace", 700 * 1024, 2);
    plantCacheFile(tmp.path / "new.vctrace", 700 * 1024, 1);

    EnvGuard dir("VCOMA_TRACE_DIR", tmp.path.string().c_str());
    EnvGuard budget("VCOMA_TRACE_MAX_MB", "1");
    Runner runner("");
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "old.vctrace"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "new.vctrace"));
}

TEST(Runner, EnvCacheMaxBytesParsesStrictly)
{
    constexpr std::uint64_t mib = 1024 * 1024;
    {
        EnvGuard env("VCOMA_CACHE_MAX_MB", nullptr);
        EXPECT_EQ(Runner::envCacheMaxBytes(), 0u);
    }
    {
        EnvGuard env("VCOMA_CACHE_MAX_MB", "7");
        EXPECT_EQ(Runner::envCacheMaxBytes(), 7 * mib);
    }
    {
        EnvGuard env("VCOMA_CACHE_MAX_MB", " 5");
        EXPECT_EQ(Runner::envCacheMaxBytes(), 5 * mib);
    }
    {   // Unbounded, with a warning: never guess a budget.
        EnvGuard env("VCOMA_CACHE_MAX_MB", "-3");
        EXPECT_EQ(Runner::envCacheMaxBytes(), 0u);
    }
    {
        EnvGuard env("VCOMA_CACHE_MAX_MB", "12cats");
        EXPECT_EQ(Runner::envCacheMaxBytes(), 0u);
    }
    {   // MB -> bytes saturates instead of wrapping.
        EnvGuard env("VCOMA_CACHE_MAX_MB", "99999999999999999999");
        EXPECT_EQ(Runner::envCacheMaxBytes(),
                  std::numeric_limits<std::uint64_t>::max());
    }
}

TEST(Runner, ConstructionPrunesAnOversizedCache)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path);
    // Two entries totalling ~1.4 MiB against a 1 MB budget: the
    // Runner's constructor must evict the older one.
    plantCacheFile(tmp.path / "old.txt", 700 * 1024, 2);
    plantCacheFile(tmp.path / "new.txt", 700 * 1024, 1);

    EnvGuard env("VCOMA_CACHE_MAX_MB", "1");
    Runner runner(tmp.path.string());
    EXPECT_FALSE(std::filesystem::exists(tmp.path / "old.txt"));
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "new.txt"));
}

TEST(Runner, StaleV3CacheFileIsRejected)
{
    // v3 entries were produced before the Rng::below() modulo-bias
    // fix, so their sheets no longer match what a fresh run computes.
    // The v4 magic bump must force a re-run instead of quietly mixing
    // pre-fix and post-fix results in one sweep.
    TempDir dir;
    Runner first(dir.path.string());
    first.run(tinyExperiment());
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        std::ofstream out(entry.path());
        out << "vcoma-cache-v3\nworkload UNIFORM\nend\n";
    }
    Runner second(dir.path.string());
    second.run(tinyExperiment());
    EXPECT_EQ(second.executed(), 1u) << "pre-RNG-fix file must re-run";
}

TEST(ExperimentConfig, KeySanitizesHostileWorkloadSpellings)
{
    // The key doubles as a cache file name, so TRACE: paths and
    // knobbed spellings (slashes, colons) must come out
    // filesystem-safe without different spellings colliding.
    ExperimentConfig trace = tinyExperiment();
    trace.workload = "TRACE:/var/traces/web.vctrace";
    ExperimentConfig other = trace;
    other.workload = "TRACE:/var/traces/db.vctrace";
    ExperimentConfig knobbed = tinyExperiment();
    knobbed.workload = "KVLOOKUP:skew=1.2,read=0.5";

    for (const auto *cfg : {&trace, &other, &knobbed}) {
        const std::string key = cfg->key();
        EXPECT_EQ(key.find('/'), std::string::npos) << key;
        EXPECT_EQ(key.find(':'), std::string::npos) << key;
    }
    EXPECT_NE(trace.key(), other.key())
        << "sanitisation must not collapse distinct spellings";

    // Plain benchmark names keep their historical keys byte for byte
    // (no hash suffix), so existing caches stay warm.
    ExperimentConfig plain = tinyExperiment();
    EXPECT_EQ(plain.key().rfind("UNIFORM-", 0), 0u) << plain.key();
}

TEST(Runner, EnvCacheTenantValidatesTheName)
{
    {
        EnvGuard env("VCOMA_CACHE_TENANT", nullptr);
        EXPECT_EQ(Runner::envCacheTenant(), "");
    }
    {
        EnvGuard env("VCOMA_CACHE_TENANT", "team-a.prod_2");
        EXPECT_EQ(Runner::envCacheTenant(), "team-a.prod_2");
    }
    // Anything that could escape the cache root is refused outright.
    for (const char *bad : {"..", ".", "a/b", "../up", "x y", "a:b"}) {
        EnvGuard env("VCOMA_CACHE_TENANT", bad);
        EXPECT_EQ(Runner::envCacheTenant(), "") << bad;
    }
}

TEST(Runner, CacheTenantNamespacesEntries)
{
    TempDir dir;
    {
        EnvGuard env("VCOMA_CACHE_TENANT", "alice");
        Runner runner(dir.path.string());
        runner.run(tinyExperiment());
    }
    // The entry landed under alice/, not in the shared root.
    unsigned rootEntries = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        if (entry.is_regular_file())
            ++rootEntries;
    }
    EXPECT_EQ(rootEntries, 0u);
    ASSERT_TRUE(std::filesystem::is_directory(dir.path / "alice"));

    {   // Same tenant: warm.
        EnvGuard env("VCOMA_CACHE_TENANT", "alice");
        Runner again(dir.path.string());
        again.run(tinyExperiment());
        EXPECT_EQ(again.executed(), 0u);
    }
    {   // Different tenant: isolated, must re-run.
        EnvGuard env("VCOMA_CACHE_TENANT", "bob");
        Runner stranger(dir.path.string());
        stranger.run(tinyExperiment());
        EXPECT_EQ(stranger.executed(), 1u);
    }
    {   // No tenant: the shared root is separate again.
        EnvGuard env("VCOMA_CACHE_TENANT", nullptr);
        Runner shared(dir.path.string());
        shared.run(tinyExperiment());
        EXPECT_EQ(shared.executed(), 1u);
    }
}

TEST(Runner, TenantBudgetPrunesOnlyTheTenantDir)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path / "alice");
    // Oversized tenant dir next to fresh shared-root entries.
    plantCacheFile(tmp.path / "alice" / "old.txt", 700 * 1024, 2);
    plantCacheFile(tmp.path / "alice" / "new.txt", 700 * 1024, 1);
    plantCacheFile(tmp.path / "shared.txt", 700 * 1024, 9);

    EnvGuard tenant("VCOMA_CACHE_TENANT", "alice");
    EnvGuard budget("VCOMA_CACHE_TENANT_MAX_MB", "1");
    EnvGuard global("VCOMA_CACHE_MAX_MB", nullptr);
    Runner runner(tmp.path.string());
    EXPECT_FALSE(
        std::filesystem::exists(tmp.path / "alice" / "old.txt"));
    EXPECT_TRUE(
        std::filesystem::exists(tmp.path / "alice" / "new.txt"));
    // Another tenant's (or the shared root's) files are untouchable,
    // however old they are.
    EXPECT_TRUE(std::filesystem::exists(tmp.path / "shared.txt"));
}

TEST(Runner, TenantBudgetFallsBackToTheGlobalBudget)
{
    TempDir tmp;
    std::filesystem::create_directories(tmp.path / "alice");
    plantCacheFile(tmp.path / "alice" / "old.txt", 700 * 1024, 2);
    plantCacheFile(tmp.path / "alice" / "new.txt", 700 * 1024, 1);

    EnvGuard tenant("VCOMA_CACHE_TENANT", "alice");
    EnvGuard budget("VCOMA_CACHE_TENANT_MAX_MB", nullptr);
    EnvGuard global("VCOMA_CACHE_MAX_MB", "1");
    Runner runner(tmp.path.string());
    EXPECT_FALSE(
        std::filesystem::exists(tmp.path / "alice" / "old.txt"));
    EXPECT_TRUE(
        std::filesystem::exists(tmp.path / "alice" / "new.txt"));
}
