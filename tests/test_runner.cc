/** @file Tests for the experiment runner and its disk cache. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/experiments.hh"
#include "harness/runner.hh"
#include "translation/scheme.hh"

using namespace vcoma;

namespace
{

ExperimentConfig
tinyExperiment()
{
    ExperimentConfig cfg;
    cfg.workload = "UNIFORM";
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.05;
    return cfg;
}

struct TempDir
{
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("vcoma_test_cache_" + std::to_string(::getpid()));
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::filesystem::path path;
};

} // namespace

TEST(ExperimentConfig, KeyEncodesEveryField)
{
    ExperimentConfig a = tinyExperiment();
    ExperimentConfig b = a;
    EXPECT_EQ(a.key(), b.key());
    b.tlbEntries = 16;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.scheme = Scheme::L0;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.writebacksAccessTlb = false;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.raytraceV2 = true;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.scale = 2.0;
    EXPECT_NE(a.key(), b.key());
}

TEST(Runner, MemoisesWithinProcess)
{
    Runner runner("");  // no disk cache
    const RunStats &a = runner.run(tinyExperiment());
    const RunStats &b = runner.run(tinyExperiment());
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(runner.executed(), 1u);
}

TEST(Runner, DiskCacheRoundTripsAllFields)
{
    TempDir dir;
    RunStats first;
    {
        Runner runner(dir.path.string());
        first = runner.run(tinyExperiment());
        EXPECT_EQ(runner.executed(), 1u);
    }
    {
        Runner runner(dir.path.string());
        const RunStats &again = runner.run(tinyExperiment());
        EXPECT_EQ(runner.executed(), 0u) << "must come from disk";
        EXPECT_EQ(again.workload, first.workload);
        EXPECT_EQ(again.parameters, first.parameters);
        EXPECT_EQ(again.scheme, first.scheme);
        EXPECT_EQ(again.numNodes, first.numNodes);
        EXPECT_EQ(again.execTime, first.execTime);
        EXPECT_EQ(again.totalRefs(), first.totalRefs());
        EXPECT_EQ(again.totalSync(), first.totalSync());
        ASSERT_EQ(again.shadow.size(), first.shadow.size());
        for (std::size_t i = 0; i < first.shadow.size(); ++i) {
            EXPECT_EQ(again.shadow[i].demandMisses,
                      first.shadow[i].demandMisses);
            EXPECT_EQ(again.shadow[i].writebackMisses,
                      first.shadow[i].writebackMisses);
        }
        EXPECT_EQ(again.tlbMisses, first.tlbMisses);
        EXPECT_EQ(again.pressureProfile, first.pressureProfile);
        EXPECT_EQ(again.remoteReads, first.remoteReads);
        EXPECT_EQ(again.blockMessages, first.blockMessages);
        EXPECT_EQ(again.amMisses, first.amMisses);
    }
}

TEST(Runner, CorruptCacheFileIsIgnored)
{
    TempDir dir;
    Runner first(dir.path.string());
    first.run(tinyExperiment());
    // Corrupt every cache file.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        std::ofstream out(entry.path());
        out << "garbage\n";
    }
    Runner second(dir.path.string());
    second.run(tinyExperiment());
    EXPECT_EQ(second.executed(), 1u);
}

TEST(RunStats, DerivedMetrics)
{
    Runner runner("");
    const RunStats &stats = runner.run(tinyExperiment());
    // Miss rate: percentage of total refs.
    const double rate = stats.missRatePct(8, 0, true);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 100.0);
    // Misses per node consistent with the raw point.
    const auto &p = stats.shadowPoint(8, 0);
    EXPECT_DOUBLE_EQ(stats.missesPerNode(8, 0, false),
                     static_cast<double>(p.demandMisses) / 32.0);
    EXPECT_THROW(stats.shadowPoint(9999, 0), FatalError);
}

TEST(Experiments, TagOverheadMatchesPaperNumbers)
{
    // Section 6: 2-3 extra tag bytes => 1.5%-2.5% of AM for 128 B
    // blocks, 3%-4.5% for 64 B, 6%-9% for 32 B.
    EXPECT_NEAR(100 * virtualTagOverhead(128, 2), 1.56, 0.1);
    EXPECT_NEAR(100 * virtualTagOverhead(128, 3), 2.34, 0.2);
    EXPECT_NEAR(100 * virtualTagOverhead(64, 3), 4.69, 0.25);
    EXPECT_NEAR(100 * virtualTagOverhead(32, 2), 6.25, 0.1);
    EXPECT_NEAR(100 * virtualTagOverhead(32, 3), 9.38, 0.5);
    const Table t = tagOverheadTable();
    EXPECT_EQ(t.title().substr(0, 9), "Section 6");
}

TEST(Experiments, Table1ListsAllBenchmarks)
{
    const Table t = table1Benchmarks(0.05);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    for (const auto &name : paperBenchmarks())
        EXPECT_NE(text.find(name), std::string::npos) << name;
}
