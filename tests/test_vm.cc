/**
 * @file
 * Tests for the virtual-memory layer: the address space, the page
 * table with its backpointers, the three placement allocators and the
 * pressure tracker.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/vaddr_layout.hh"
#include "translation/system_builder.hh"
#include "vm/address_space.hh"
#include "vm/page_allocator.hh"
#include "vm/page_table.hh"
#include "vm/pressure.hh"

using namespace vcoma;

// ---------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------

TEST(AddressSpace, AllocatesAlignedDisjointSegments)
{
    AddressSpace space(0x10000);
    const VAddr a = space.alloc("a", 100, 64);
    const VAddr b = space.alloc("b", 5000, 4096);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(space.segments().size(), 2u);
    EXPECT_EQ(space.totalBytes(), 5100u);
}

TEST(AddressSpace, RejectsBadRequests)
{
    AddressSpace space;
    EXPECT_THROW(space.alloc("zero", 0), FatalError);
    EXPECT_THROW(space.alloc("align", 64, 100), FatalError);
}

TEST(AddressSpace, Alignment32kVs4kChangesPageColours)
{
    // The RAYTRACE layout experiment in miniature.
    AddressSpace v1(0x100000);
    AddressSpace v2(0x100000);
    std::vector<VAddr> bases1, bases2;
    for (int p = 0; p < 8; ++p) {
        bases1.push_back(v1.alloc("s", 8192, 32768));
        bases2.push_back(v2.alloc("s", 8192, 4096));
    }
    for (int p = 0; p < 8; ++p) {
        EXPECT_EQ((bases1[p] >> 12) % 8, 0u);  // colour multiple of 8
    }
    // Packed V2 bases advance by 2 pages.
    for (int p = 1; p < 8; ++p)
        EXPECT_EQ(bases2[p] - bases2[p - 1], 8192u);
}

// ---------------------------------------------------------------------
// Allocators and the page table
// ---------------------------------------------------------------------

namespace
{

struct VmFixtureParts
{
    MachineConfig cfg = baselineConfig(Scheme::VCOMA);
    VAddrLayout layout{cfg};
    PressureTracker pressure{cfg.numGlobalPageSets(),
                             cfg.globalPageSetCapacity()};
};

} // namespace

TEST(RoundRobinAllocator, HomesRotateFramesIncrement)
{
    VmFixtureParts f;
    RoundRobinAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    for (unsigned i = 0; i < 100; ++i) {
        PageInfo &page = pt.ensureResident(VAddr{i} << 12);
        EXPECT_EQ(page.frame, i);
        EXPECT_EQ(page.home, i % 32);
        EXPECT_EQ(page.colour, i % 256);
        EXPECT_TRUE(page.resident);
    }
}

TEST(ColouredAllocator, FrameColourMatchesVirtualColour)
{
    VmFixtureParts f;
    ColouredAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    // Pages with assorted vpns, including colour collisions.
    for (PageNum vpn : {0ull, 1ull, 255ull, 256ull, 257ull, 513ull}) {
        PageInfo &page = pt.ensureResident(vpn << 12);
        EXPECT_EQ(page.frame & 255u, vpn & 255u) << "vpn=" << vpn;
        EXPECT_EQ(page.colour, vpn & 255u);
        EXPECT_EQ(page.home, page.frame % 32);
    }
    // Two pages of the same colour get distinct frames.
    EXPECT_NE(pt.find(0)->frame, pt.find(256)->frame);
}

TEST(VcomaAllocator, HomeFromVpnNoFrames)
{
    VmFixtureParts f;
    VcomaAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    PageInfo &a = pt.ensureResident(VAddr{5} << 12);
    PageInfo &b = pt.ensureResident(VAddr{37} << 12);
    EXPECT_EQ(a.home, 5u);
    EXPECT_EQ(b.home, 5u);  // 37 mod 32
    EXPECT_EQ(a.frame, PageInfo::noFrame);
    // Directory pages allocated per home, in order.
    EXPECT_EQ(a.dirPage, 0u);
    EXPECT_EQ(b.dirPage, 1u);
}

TEST(PageTable, TranslateAndReverseAreInverse)
{
    VmFixtureParts f;
    RoundRobinAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    for (PageNum vpn = 0; vpn < 50; ++vpn)
        pt.ensureResident(vpn << 12);
    for (PageNum vpn = 0; vpn < 50; ++vpn) {
        const VAddr va = (vpn << 12) | 0x123;
        const PAddr pa = pt.translate(va);
        EXPECT_EQ(pt.reverse(pa), va);
        EXPECT_EQ(pa & 0xFFFu, 0x123u);
    }
}

TEST(PageTable, TranslateWithoutFramesPanics)
{
    VmFixtureParts f;
    VcomaAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    pt.ensureResident(0x5000);
    EXPECT_THROW(pt.translate(0x5000), PanicError);
}

TEST(PageTable, FirstTouchCountsOnePageFault)
{
    VmFixtureParts f;
    RoundRobinAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    pt.ensureResident(0x1000);
    pt.ensureResident(0x1800);  // same page
    pt.ensureResident(0x2000);
    EXPECT_EQ(pt.pageFaults.value(), 2u);
    EXPECT_EQ(pt.pageReloads.value(), 0u);
}

TEST(PageTable, SwapOutAndReload)
{
    VmFixtureParts f;
    RoundRobinAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    PageInfo &page = pt.ensureResident(0x3000);
    const auto frame = page.frame;
    pt.swapOut(3);
    EXPECT_FALSE(pt.find(3)->resident);
    PageInfo &again = pt.ensureResident(0x3000);
    EXPECT_TRUE(again.resident);
    EXPECT_EQ(again.frame, frame);  // placement survives the swap
    EXPECT_EQ(pt.pageReloads.value(), 1u);
    EXPECT_EQ(pt.swapOuts.value(), 1u);
}

TEST(PageTable, ResidentCallbackFires)
{
    VmFixtureParts f;
    RoundRobinAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    unsigned calls = 0;
    pt.onPageResident([&](PageInfo &) { ++calls; });
    pt.ensureResident(0x1000);
    pt.ensureResident(0x1000);
    EXPECT_EQ(calls, 1u);
    pt.swapOut(1);
    pt.ensureResident(0x1000);
    EXPECT_EQ(calls, 2u);
}

// ---------------------------------------------------------------------
// Pressure tracking (the Figure 11 machinery)
// ---------------------------------------------------------------------

TEST(Pressure, TracksOccupancyAndProfile)
{
    PressureTracker tracker(4, 8);
    tracker.pageIn(0);
    tracker.pageIn(0);
    tracker.pageIn(3);
    EXPECT_EQ(tracker.occupied(0), 2u);
    EXPECT_DOUBLE_EQ(tracker.pressure(0), 0.25);
    EXPECT_DOUBLE_EQ(tracker.pressure(1), 0.0);
    EXPECT_DOUBLE_EQ(tracker.maxPressure(), 0.25);
    EXPECT_DOUBLE_EQ(tracker.meanPressure(), 3.0 / 32.0);
    const auto profile = tracker.profile();
    ASSERT_EQ(profile.size(), 4u);
    EXPECT_DOUBLE_EQ(profile[3], 0.125);
}

TEST(Pressure, PageOutReleases)
{
    PressureTracker tracker(2, 4);
    tracker.pageIn(1);
    tracker.pageOut(1);
    EXPECT_EQ(tracker.occupied(1), 0u);
    EXPECT_THROW(tracker.pageOut(1), PanicError);
}

TEST(Pressure, OverflowCounted)
{
    PressureTracker tracker(1, 2);
    tracker.pageIn(0);
    tracker.pageIn(0);
    EXPECT_EQ(tracker.overflows.value(), 0u);
    tracker.pageIn(0);
    EXPECT_EQ(tracker.overflows.value(), 1u);
}

TEST(Pressure, WouldExceedThreshold)
{
    PressureTracker tracker(1, 4);
    tracker.pageIn(0);
    tracker.pageIn(0);
    tracker.pageIn(0);
    EXPECT_FALSE(tracker.wouldExceed(0, 1.0));
    tracker.pageIn(0);
    EXPECT_TRUE(tracker.wouldExceed(0, 1.0));
    EXPECT_FALSE(tracker.wouldExceed(0, 2.0));
}

/** Uniform virtual layout gives uniform pressure (paper Section 6). */
TEST(Pressure, SequentialPagesSpreadUniformly)
{
    VmFixtureParts f;
    VcomaAllocator alloc(f.layout, f.pressure, 32);
    PageTable pt(12, alloc);
    // 4 * 256 sequential pages: every colour gets exactly 4.
    for (PageNum vpn = 0; vpn < 1024; ++vpn)
        pt.ensureResident(vpn << 12);
    for (std::uint64_t c = 0; c < 256; ++c)
        EXPECT_EQ(f.pressure.occupied(c), 4u) << "colour " << c;
}
