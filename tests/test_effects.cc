/**
 * @file
 * Direct tests of the paper's three effects (Section 5.2 and the
 * conclusion): V-COMA is the only design that capitalises on the
 * *filtering* effect (caches below the translation point absorb
 * accesses), the *sharing* effect (DLB entries are never replicated
 * across nodes) and the *prefetching* effect (one DLB fill serves
 * every node's later requests).
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

MachineConfig
cfgFor(Scheme scheme)
{
    MachineConfig cfg = tinyConfig(scheme);
    cfg.timedTranslation = false;
    return cfg;
}

} // namespace

/**
 * Filtering: the number of misses of a TLB cannot exceed the number
 * of misses of the cache underneath it (Section 5.2) — the stream
 * reaching a deeper TLB is exactly the miss stream of the level
 * above.
 */
TEST(Effects, FilteringBoundsTlbAccessesByCacheMisses)
{
    Machine m(cfgFor(Scheme::L2));
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    auto w = makeWorkload("UNIFORM", p);
    const RunStats stats = m.run(*w);
    // L2 demand accesses == SLC->AM crossings <= SLC misses+upgrades.
    const auto &point = stats.shadowPoint(8, 0);
    EXPECT_LE(point.demandAccesses,
              stats.slcMisses + stats.upgrades);
    // Note the paper's caveat: coherence misses cannot be filtered
    // out, so a write-shared working set still reaches the deep TLB;
    // the structural bound above is the filtering guarantee.
    EXPECT_LT(point.demandAccesses, stats.totalRefs());
}

/**
 * Sharing: one 8-entry DLB per home serves all processors without
 * replication, so it covers a working set that per-node TLBs of the
 * same size thrash on. Every node reads the same large page set; in
 * L3 every node's private TLB takes its own misses, in V-COMA the
 * pages are spread over the homes and the 8 entries per home hold
 * them all.
 */
TEST(Effects, SharingBeatsPrivateTlbsOfEqualSize)
{
    const unsigned pages = 32;  // 8 per home in the 4-node machine
    std::uint64_t l3Misses = 0;
    std::uint64_t dlbMisses = 0;
    for (Scheme scheme : {Scheme::L3, Scheme::VCOMA}) {
        Machine m(cfgFor(scheme));
        Tick t = 0;
        // Every node sweeps all pages, several times.
        for (unsigned sweep = 0; sweep < 6; ++sweep) {
            for (unsigned cpu = 0; cpu < 4; ++cpu) {
                for (unsigned pg = 0; pg < pages; ++pg) {
                    // Touch two blocks so the stream reaches the AM
                    // miss point at least once per page per node.
                    const VAddr va =
                        0x100000 + pg * 1024 + (sweep % 2) * 512;
                    m.access(cpu, RefType::Read, va, t);
                    t += 2000;
                }
            }
        }
        std::uint64_t misses = 0;
        for (unsigned n = 0; n < 4; ++n) {
            if (m.node(n).tlb)
                misses += m.node(n).tlb->misses();
            if (m.node(n).dlb)
                misses += m.node(n).dlb->tlb().misses();
        }
        if (scheme == Scheme::L3)
            l3Misses = misses;
        else
            dlbMisses = misses;
    }
    EXPECT_LT(dlbMisses, l3Misses)
        << "shared DLB entries must beat replicated TLB entries";
}

/**
 * Prefetching: when the whole working set fits, every page-table
 * entry is loaded only once in the whole system in V-COMA instead of
 * once per node (Section 5.2). With data spread over all four homes,
 * total cold DLB misses equal the page count while L3's private TLBs
 * pay once per (node, page).
 */
TEST(Effects, PrefetchingOneFillServesAllNodes)
{
    const unsigned pages = 16;  // fits: 4 per home, 8-entry DLBs
    auto coldMisses = [&](Scheme scheme) {
        Machine m(cfgFor(scheme));
        Tick t = 0;
        for (unsigned cpu = 0; cpu < 4; ++cpu) {
            for (unsigned pg = 0; pg < pages; ++pg) {
                m.access(cpu, RefType::Read, 0x200000 + pg * 1024, t);
                t += 2000;
            }
        }
        std::uint64_t misses = 0;
        for (unsigned n = 0; n < 4; ++n) {
            if (m.node(n).tlb)
                misses += m.node(n).tlb->misses();
            if (m.node(n).dlb)
                misses += m.node(n).dlb->tlb().misses();
        }
        return misses;
    };

    const std::uint64_t dlb = coldMisses(Scheme::VCOMA);
    const std::uint64_t l3 = coldMisses(Scheme::L3);
    // V-COMA: exactly one cold fill per page, system-wide. (Only
    // accesses that miss the local node reach the DLB; the first
    // toucher of a home-local page misses the DLB via its own home.)
    EXPECT_LE(dlb, pages);
    // L3: up to one cold fill per page per *node that misses
    // locally*; with remote pages that is nearly every (node, page).
    EXPECT_GT(l3, dlb);
}
