/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace vcoma;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3u);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

// Golden sequence: pins the exact Lemire-rejection below() outputs so
// an accidental change to the bounded-draw algorithm (which would
// silently invalidate every recorded trace and cached sheet) shows up
// as a test failure, not as quietly different experiment results.
TEST(Rng, BelowGoldenSequence)
{
    Rng r(123);
    const std::uint64_t expected[] = {178ull, 341ull, 968ull, 271ull,
                                      639ull, 6ull,   77ull,  300ull};
    for (std::uint64_t want : expected)
        EXPECT_EQ(r.below(1000), want);
}

// The old implementation computed next() % bound, which for bounds
// near the top of the 64-bit range is visibly biased: with
// bound = 3 * 2^62, values below 2^62 are hit by TWO source ranges
// (direct and wrapped) while the upper two quarters are hit by one,
// giving a 2:1:1 distribution across the three bins instead of
// 1:1:1.  At 30000 draws that skew yields a chi-squared statistic of
// roughly 3700; an unbiased draw stays in single digits.  13.82 is
// the p = 0.001 critical value for 2 degrees of freedom, so this
// test fails deterministically on the modulo bug and passes with
// enormous margin on Lemire rejection.
TEST(Rng, BelowUnbiasedAtExtremeBound)
{
    Rng r(2024);
    const std::uint64_t bound = 3ull << 62;
    const int draws = 30000;
    long bins[3] = {0, 0, 0};
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t v = r.below(bound);
        ASSERT_LT(v, bound);
        ++bins[v >> 62];
    }
    const double expected = draws / 3.0;
    double chi2 = 0.0;
    for (long b : bins) {
        const double d = b - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 13.82) << "bins " << bins[0] << " " << bins[1]
                           << " " << bins[2];
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}
