/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace vcoma;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3u);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}
