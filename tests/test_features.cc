/**
 * @file
 * Tests for the extension features: the 0-entry (software-managed)
 * translation mode, the reference-bit decay daemon, the gem5-style
 * stats dump, and the ablation knobs of the experiment runner.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "sim/machine.hh"
#include "tlb/tlb.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

// ---------------------------------------------------------------------
// Software-managed translation (0-entry TLB).
// ---------------------------------------------------------------------

TEST(SoftwareTlb, ZeroEntriesAlwaysMiss)
{
    Tlb tlb(0, 0, 1);
    for (PageNum p = 0; p < 10; ++p) {
        EXPECT_FALSE(tlb.access(p));
        EXPECT_FALSE(tlb.access(p));  // no fill either
        EXPECT_FALSE(tlb.contains(p));
    }
    EXPECT_EQ(tlb.demandMisses.value(), 20u);
    EXPECT_FALSE(tlb.invalidate(3));
    tlb.flush();  // no-op, must not crash
}

TEST(SoftwareTlb, MachineTrapsOnEverySlcMiss)
{
    MachineConfig cfg = tinyConfig(Scheme::L2, /*entries=*/0);
    cfg.timedTranslation = true;
    Machine m(cfg);
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    auto w = makeWorkload("UNIFORM", p);
    const RunStats stats = m.run(*w);
    EXPECT_GT(stats.tlbAccesses, 0u);
    EXPECT_EQ(stats.tlbMisses, stats.tlbAccesses)
        << "a 0-entry TLB traps on every access";
    EXPECT_EQ(stats.totalXlatStall(),
              stats.tlbMisses * cfg.timing.translationMiss);
}

// ---------------------------------------------------------------------
// Reference-bit decay daemon (Section 4.1).
// ---------------------------------------------------------------------

TEST(RefBitDecay, DaemonRunsPeriodically)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.refBitDecayPeriod = 50000;
    Machine m(cfg);
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    auto w = makeWorkload("STRIDE", p);
    const RunStats stats = m.run(*w);
    EXPECT_GT(m.refBitDecays(), 0u);
    EXPECT_LE(m.refBitDecays(), stats.execTime / 50000 + 1);
}

TEST(RefBitDecay, DisabledByDefault)
{
    Machine m(tinyConfig(Scheme::VCOMA));
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    auto w = makeWorkload("UNIFORM", p);
    m.run(*w);
    EXPECT_EQ(m.refBitDecays(), 0u);
}

TEST(RefBitDecay, ClearsReferenceBits)
{
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    Machine m(cfg);
    m.access(0, RefType::Read, 0x40000, 0);
    const PageNum vpn = m.layout().vpn(0x40000);
    EXPECT_TRUE(m.pageTable().find(vpn)->referenced);
    m.pageTable().clearReferenceBits();
    EXPECT_FALSE(m.pageTable().find(vpn)->referenced);
    // The next access sets it again.
    m.access(1, RefType::Read, 0x40000, 1000);
    EXPECT_TRUE(m.pageTable().find(vpn)->referenced);
}

// ---------------------------------------------------------------------
// Stats dump.
// ---------------------------------------------------------------------

TEST(DumpStats, ContainsComponentHierarchy)
{
    Machine m(tinyConfig(Scheme::VCOMA));
    m.access(0, RefType::Write, 0x40000, 0);
    m.access(1, RefType::Read, 0x40000, 1000);
    std::ostringstream os;
    m.dumpStats(os);
    const std::string text = os.str();
    for (const char *needle :
         {"machine:", "protocol:", "remoteReads", "network:",
          "blockMessages", "vm:", "pageFaults", "node0:", "am.hits",
          "dlb.demandAccesses"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(DumpStats, TlbSchemesShowTlbCounters)
{
    Machine m(tinyConfig(Scheme::L0));
    m.access(0, RefType::Read, 0x40000, 0);
    std::ostringstream os;
    m.dumpStats(os);
    EXPECT_NE(os.str().find("tlb.demandAccesses"), std::string::npos);
    EXPECT_EQ(os.str().find("dlb."), std::string::npos);
}

// ---------------------------------------------------------------------
// Runner ablation knobs.
// ---------------------------------------------------------------------

TEST(RunnerKnobs, AmAssocAndPenaltyAffectKeyAndMachine)
{
    ExperimentConfig a;
    a.workload = "UNIFORM";
    a.scale = 0.05;
    ExperimentConfig b = a;
    b.amAssoc = 2;
    EXPECT_NE(a.key(), b.key());
    ExperimentConfig c = a;
    c.xlatPenalty = 200;
    EXPECT_NE(a.key(), c.key());

    Runner runner("");
    const RunStats &assoc2 = runner.run(b);
    EXPECT_GT(assoc2.totalRefs(), 0u);
}

TEST(RunnerKnobs, HigherPenaltyCostsMoreXlatStall)
{
    Runner runner("");
    ExperimentConfig base;
    base.workload = "UNIFORM";
    base.scale = 0.05;
    base.scheme = Scheme::L0;
    base.tlbEntries = 4;
    base.timedTranslation = true;
    base.xlatPenalty = 40;
    ExperimentConfig expensive = base;
    expensive.xlatPenalty = 160;
    const RunStats &cheap = runner.run(base);
    const RunStats &costly = runner.run(expensive);
    EXPECT_GT(costly.totalXlatStall(), cheap.totalXlatStall());
    EXPECT_EQ(costly.tlbMisses, cheap.tlbMisses)
        << "penalty changes timing, not the reference stream";
}
