/**
 * @file
 * Workload-generator tests: stream well-formedness (addresses inside
 * allocated segments, matched barriers and locks), determinism,
 * scaling, and algorithmic correctness (RADIX really sorts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

struct DrainResult
{
    std::vector<std::uint64_t> refsPerThread;
    std::vector<std::uint64_t> barriersPerThread;
    std::vector<MemRef> firstRefs;  // thread 0's first refs
    std::uint64_t totalRefs = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockReleases = 0;
    bool addressesInBounds = true;
};

/**
 * Drain every thread with a barrier-aware round-robin interleaver
 * (no timing model): threads advance one event at a time; a thread
 * reaching a barrier parks until all live threads arrive.
 */
DrainResult
drainWorkload(Workload &w, std::size_t keepFirst = 0)
{
    const unsigned P = w.numThreads();
    DrainResult result;
    result.refsPerThread.assign(P, 0);
    result.barriersPerThread.assign(P, 0);

    std::vector<Generator<MemRef>> gens;
    gens.reserve(P);
    for (unsigned t = 0; t < P; ++t)
        gens.push_back(w.thread(t));

    const auto &segments = w.space().segments();
    auto inBounds = [&](VAddr a) {
        for (const auto &seg : segments) {
            if (a >= seg.base && a < seg.end())
                return true;
        }
        return false;
    };

    std::vector<bool> done(P, false);
    std::vector<int> parkedAt(P, -1);
    unsigned live = P;
    while (live > 0) {
        bool progressed = false;
        for (unsigned t = 0; t < P; ++t) {
            if (done[t] || parkedAt[t] >= 0)
                continue;
            auto ref = gens[t].next();
            progressed = true;
            if (!ref) {
                done[t] = true;
                --live;
                continue;
            }
            switch (ref->kind) {
              case MemRef::Kind::Mem:
                ++result.refsPerThread[t];
                ++result.totalRefs;
                if (!inBounds(ref->vaddr))
                    result.addressesInBounds = false;
                if (t == 0 && result.firstRefs.size() < keepFirst)
                    result.firstRefs.push_back(*ref);
                break;
              case MemRef::Kind::Barrier: {
                ++result.barriersPerThread[t];
                parkedAt[t] = static_cast<int>(ref->syncId);
                // Release when all non-done threads parked at the
                // same barrier.
                unsigned waiting = 0;
                for (unsigned u = 0; u < P; ++u) {
                    if (!done[u] && parkedAt[u] == parkedAt[t])
                        ++waiting;
                }
                if (waiting == live) {
                    for (unsigned u = 0; u < P; ++u)
                        parkedAt[u] = -1;
                }
                break;
              }
              case MemRef::Kind::LockAcquire:
                ++result.lockAcquires;
                break;
              case MemRef::Kind::LockRelease:
                ++result.lockReleases;
                break;
            }
        }
        if (!progressed && live > 0) {
            ADD_FAILURE() << "barrier deadlock while draining";
            break;
        }
    }
    return result;
}

WorkloadParams
params4(double scale = 0.05, std::uint64_t seed = 3)
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = scale;
    p.seed = seed;
    return p;
}

} // namespace

class WorkloadStream : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadStream, EveryThreadEmitsRefsInBounds)
{
    auto w = makeWorkload(GetParam(), params4());
    const DrainResult r = drainWorkload(*w);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(r.refsPerThread[t], 0u) << "thread " << t;
    EXPECT_TRUE(r.addressesInBounds);
    EXPECT_EQ(r.lockAcquires, r.lockReleases);
}

TEST_P(WorkloadStream, BarrierCountsMatchAcrossThreads)
{
    auto w = makeWorkload(GetParam(), params4());
    const DrainResult r = drainWorkload(*w);
    for (unsigned t = 1; t < 4; ++t)
        EXPECT_EQ(r.barriersPerThread[t], r.barriersPerThread[0]);
}

TEST_P(WorkloadStream, DeterministicForSameSeed)
{
    auto w1 = makeWorkload(GetParam(), params4(0.05, 9));
    auto w2 = makeWorkload(GetParam(), params4(0.05, 9));
    const DrainResult a = drainWorkload(*w1, 200);
    const DrainResult b = drainWorkload(*w2, 200);
    EXPECT_EQ(a.totalRefs, b.totalRefs);
    ASSERT_EQ(a.firstRefs.size(), b.firstRefs.size());
    for (std::size_t i = 0; i < a.firstRefs.size(); ++i) {
        EXPECT_EQ(a.firstRefs[i].vaddr, b.firstRefs[i].vaddr);
        EXPECT_EQ(a.firstRefs[i].type, b.firstRefs[i].type);
    }
}

TEST_P(WorkloadStream, FootprintReported)
{
    auto w = makeWorkload(GetParam(), params4());
    EXPECT_GT(w->sharedBytes(), 0u);
    EXPECT_FALSE(w->parameters().empty());
    EXPECT_FALSE(w->space().segments().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadStream,
    ::testing::Values("RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE",
                      "BARNES", "UNIFORM", "STRIDE"));

// ---------------------------------------------------------------------
// Workload-specific behaviour.
// ---------------------------------------------------------------------

TEST(WorkloadScaling, ScaleGrowsFootprint)
{
    for (const char *name : {"RADIX", "FFT", "BARNES"}) {
        auto small = makeWorkload(name, params4(0.1));
        auto large = makeWorkload(name, params4(8.0));
        EXPECT_GT(large->sharedBytes(), small->sharedBytes()) << name;
    }
}

TEST(WorkloadNames, FactoryIsCaseInsensitiveAndRejectsUnknown)
{
    EXPECT_NO_THROW(makeWorkload("radix", params4()));
    EXPECT_NO_THROW(makeWorkload("Ocean", params4()));
    EXPECT_THROW(makeWorkload("NOSUCH", params4()), FatalError);
    EXPECT_EQ(workloadNames().size(), 12u);
}

TEST(RadixWorkload, ReallySortsItsKeys)
{
    // RADIX ends with a check phase that panics if the output array
    // is not sorted; the drain honours barriers, so the host-side
    // sort runs exactly as it would on the simulated machine.
    auto w = makeWorkload("RADIX", params4(0.05));
    EXPECT_NO_FATAL_FAILURE(drainWorkload(*w));
}

TEST(RaytraceLayout, V1StacksAreAligned32k)
{
    auto w = makeWorkload("RAYTRACE", params4(0.05));
    unsigned found = 0;
    for (const auto &seg : w->space().segments()) {
        if (seg.name.rfind("raytrace.raystruct", 0) == 0) {
            EXPECT_EQ(seg.base % 32768, 0u) << seg.name;
            // Hot page colour is a multiple of 8 (32 KB / 4 KB).
            EXPECT_EQ((seg.base >> 12) % 8, 0u);
            ++found;
        }
    }
    EXPECT_EQ(found, 4u);
}

TEST(RaytraceLayout, V2StacksArePacked)
{
    WorkloadParams p = params4(0.05);
    p.raytraceV2Layout = true;
    auto w = makeWorkload("RAYTRACE", p);
    std::vector<VAddr> bases;
    for (const auto &seg : w->space().segments()) {
        if (seg.name.rfind("raytrace.raystruct", 0) == 0)
            bases.push_back(seg.base);
    }
    ASSERT_EQ(bases.size(), 4u);
    for (std::size_t i = 1; i < bases.size(); ++i)
        EXPECT_EQ(bases[i] - bases[i - 1], 8192u);
}

TEST(OceanWorkload, NeighbourRowsAreShared)
{
    // Thread t's stencil reads include rows owned by t-1 and t+1:
    // check that some addresses of thread 1's stream fall into
    // thread 0's band.
    auto w = makeWorkload("OCEAN", params4());
    auto gen = w->thread(1);
    bool touchesForeign = false;
    const auto &segments = w->space().segments();
    const VAddr grid0 = segments.at(0).base;
    for (int i = 0; i < 2000; ++i) {
        auto ref = gen.next();
        if (!ref)
            break;
        if (ref->kind != MemRef::Kind::Mem)
            continue;
        // Row 32 is thread 0's last row at dim 128 with 4 threads;
        // thread 1 starts at row 33 and reads row 32 (north halo).
        const std::uint64_t cellBytes = 8;
        const std::uint64_t rowBytes = (128 + 2) * cellBytes;
        if (ref->vaddr >= grid0 && ref->vaddr < grid0 + 33 * rowBytes)
            touchesForeign = true;
    }
    EXPECT_TRUE(touchesForeign);
}

TEST(FftWorkload, TransposeReadsOtherPartitions)
{
    auto w = makeWorkload("FFT", params4());
    auto gen = w->thread(0);
    // First phase is the transpose: thread 0 writes its own rows but
    // reads columns spanning the whole matrix.
    const auto &segs = w->space().segments();
    const auto &xSeg = segs.at(0);
    bool readsFarHalf = false;
    for (int i = 0; i < 5000; ++i) {
        auto ref = gen.next();
        if (!ref || ref->kind == MemRef::Kind::Barrier)
            break;
        if (ref->kind == MemRef::Kind::Mem &&
            ref->type == RefType::Read &&
            ref->vaddr >= xSeg.base + xSeg.bytes / 2 &&
            ref->vaddr < xSeg.end())
            readsFarHalf = true;
    }
    EXPECT_TRUE(readsFarHalf);
}

TEST(BarnesWorkload, ForceWalksShareTopOfTree)
{
    // The root cell must be read by every thread during the force
    // phase: count reads of the first cell address across threads.
    auto w = makeWorkload("BARNES", params4());
    const auto &segs = w->space().segments();
    VAddr cellsBase = 0;
    for (const auto &seg : segs) {
        if (seg.name == "barnes.cells")
            cellsBase = seg.base;
    }
    ASSERT_NE(cellsBase, 0u);
    unsigned threadsTouchingRoot = 0;
    for (unsigned t = 0; t < 4; ++t) {
        auto gen = w->thread(t);
        bool touched = false;
        for (int i = 0; i < 200000; ++i) {
            auto ref = gen.next();
            if (!ref)
                break;
            if (ref->kind == MemRef::Kind::Mem &&
                ref->vaddr >= cellsBase && ref->vaddr < cellsBase + 128)
                touched = true;
        }
        if (touched)
            ++threadsTouchingRoot;
    }
    EXPECT_EQ(threadsTouchingRoot, 4u);
}
