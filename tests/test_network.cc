/** @file Tests for the crossbar timing/contention model. */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "net/network.hh"

using namespace vcoma;

namespace
{

TimingConfig
paperTiming()
{
    return TimingConfig{};
}

} // namespace

TEST(Resource, AcquireSequencing)
{
    Resource r;
    EXPECT_EQ(r.acquire(100, 10), 100u);
    EXPECT_EQ(r.freeAt(), 110u);
    // A later request waits for the earlier occupancy.
    EXPECT_EQ(r.acquire(105, 10), 110u);
    // A much later request starts immediately.
    EXPECT_EQ(r.acquire(500, 10), 500u);
}

TEST(Network, UncontendedLatencies)
{
    Network net(4, paperTiming());
    EXPECT_EQ(net.send(0, 1, MsgSize::Request, 1000), 1016u);
    EXPECT_EQ(net.send(2, 3, MsgSize::Block, 1000), 1272u);
}

TEST(Network, LoopbackIsFree)
{
    Network net(4, paperTiming());
    EXPECT_EQ(net.send(1, 1, MsgSize::Block, 77), 77u);
    EXPECT_EQ(net.localMessages.value(), 1u);
    EXPECT_EQ(net.blockMessages.value(), 1u);
}

TEST(Network, OutputPortSerialises)
{
    Network net(4, paperTiming());
    const Tick first = net.send(0, 1, MsgSize::Block, 0);
    const Tick second = net.send(0, 2, MsgSize::Block, 0);
    EXPECT_EQ(first, 272u);
    // The second message waits for the sender's port.
    EXPECT_EQ(second, 544u);
}

TEST(Network, InputPortSerialises)
{
    Network net(4, paperTiming());
    const Tick a = net.send(0, 3, MsgSize::Request, 0);
    const Tick b = net.send(1, 3, MsgSize::Request, 0);
    EXPECT_EQ(a, 16u);
    // Distinct senders, same receiver: the input port backs up.
    EXPECT_GE(b, a);
}

TEST(Network, DisjointPairsDoNotInterfere)
{
    Network net(4, paperTiming());
    const Tick a = net.send(0, 1, MsgSize::Block, 0);
    const Tick b = net.send(2, 3, MsgSize::Block, 0);
    EXPECT_EQ(a, b);  // a crossbar carries both concurrently
}

TEST(Network, MessageCounters)
{
    Network net(2, paperTiming());
    net.send(0, 1, MsgSize::Request, 0);
    net.send(0, 1, MsgSize::Request, 0);
    net.send(1, 0, MsgSize::Block, 0);
    EXPECT_EQ(net.requestMessages.value(), 2u);
    EXPECT_EQ(net.blockMessages.value(), 1u);
}

TEST(Network, ResetClearsReservations)
{
    Network net(2, paperTiming());
    net.send(0, 1, MsgSize::Block, 0);
    net.reset();
    EXPECT_EQ(net.send(0, 1, MsgSize::Block, 0), 272u);
}

TEST(Network, DeliveryNeverBeforeTransferTime)
{
    Network net(8, paperTiming());
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        const NodeId src = i % 8;
        const NodeId dst = (i * 3 + 1) % 8;
        if (src == dst)
            continue;
        const Tick arrive = net.send(src, dst, MsgSize::Request, t);
        EXPECT_GE(arrive, t + 16);
        t += 5;
    }
}

TEST(Network, MisroutedMessagePanicsWithContext)
{
    Network net(4, paperTiming());
    try {
        net.send(0, 9, MsgSize::Request, 0);
        FAIL() << "out-of-range destination must panic";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("node 9"), std::string::npos) << what;
        EXPECT_NE(what.find("4-node machine"), std::string::npos) << what;
    }
    EXPECT_THROW(net.send(7, 1, MsgSize::Block, 0), PanicError);
}
