/**
 * @file
 * Geometry-sweep robustness tests: the protocol, VM and translation
 * machinery must hold their invariants across unusual but legal
 * machine shapes (page sizes, block sizes, associativities, node
 * counts), not just the paper's baseline. Each geometry is fuzzed
 * with a mixed read/write workload under every scheme and checked
 * against the whole-machine invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "checkers.hh"
#include "common/rng.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

namespace
{

struct Geometry
{
    std::string name;
    MachineConfig cfg;
};

std::vector<Geometry>
geometries()
{
    std::vector<Geometry> out;

    {
        // Two nodes, the minimum home fan-out.
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.numNodes = 2;
        out.push_back({"two_nodes", cfg});
    }
    {
        // Eight nodes with a direct-mapped attraction memory: every
        // set holds one block, so injections dominate.
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.numNodes = 8;
        cfg.am = CacheConfig{128 * 1024, 1, 128, false, true};
        out.push_back({"dm_am", cfg});
    }
    {
        // Large pages relative to the AM: few colours.
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.numNodes = 4;
        cfg.pageBytes = 4096;
        cfg.am = CacheConfig{256 * 1024, 4, 128, false, true};
        out.push_back({"big_pages", cfg});
    }
    {
        // Small blocks everywhere.
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.flc = CacheConfig{512, 1, 16, true, false};
        cfg.slc = CacheConfig{2048, 2, 32, false, true};
        cfg.am = CacheConfig{64 * 1024, 4, 64, false, true};
        out.push_back({"small_blocks", cfg});
    }
    {
        // Highly associative AM with big blocks.
        MachineConfig cfg = tinyConfig(Scheme::VCOMA);
        cfg.pageBytes = 2048;
        cfg.am = CacheConfig{128 * 1024, 8, 256, false, true};
        cfg.slc = CacheConfig{4096, 4, 128, false, true};
        cfg.flc = CacheConfig{1024, 1, 64, true, false};
        out.push_back({"fat_blocks", cfg});
    }
    return out;
}

} // namespace

using GeomParam = std::tuple<int, Scheme>;

class GeometrySweep : public ::testing::TestWithParam<GeomParam>
{
};

namespace
{

std::string
geomTestName(const ::testing::TestParamInfo<GeomParam> &info)
{
    const int idx = std::get<0>(info.param);
    const Scheme scheme = std::get<1>(info.param);
    std::string name = geometries().at(idx).name + "_";
    std::string s = schemeName(scheme);
    s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
    return name + s;
}

} // namespace

TEST_P(GeometrySweep, FuzzHoldsInvariants)
{
    const auto [geomIdx, scheme] = GetParam();
    Geometry geom = geometries().at(geomIdx);
    geom.cfg.translation.scheme = scheme;
    geom.cfg.checkLevel = 2;
    // Skip shapes where the home bits exceed the colour bits (the
    // layout constructor rejects them by design).
    try {
        geom.cfg.validate();
        VAddrLayout layout(geom.cfg);
        (void)layout;
    } catch (const FatalError &) {
        GTEST_SKIP() << "geometry illegal for this node count";
    }

    Machine m(geom.cfg);
    Rng rng(42 + geomIdx);
    Tick t = 0;
    const unsigned nodes = geom.cfg.numNodes;
    for (int i = 0; i < 6000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(nodes));
        const VAddr va =
            0x400000 +
            rng.below(48) * geom.cfg.pageBytes +
            rng.below(geom.cfg.pageBytes / 8) * 8;
        const RefType type =
            rng.below(3) == 0 ? RefType::Write : RefType::Read;
        ASSERT_NO_THROW(m.access(cpu, type, va, t))
            << geom.name << " i=" << i;
        t += rng.below(300);
    }
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(Scheme::L0, Scheme::L2,
                                         Scheme::L3, Scheme::VCOMA)),
    geomTestName);
