/** @file Unit and property tests for the TLB/DLB model. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tlb/shadow_bank.hh"
#include "tlb/tlb.hh"

using namespace vcoma;

TEST(Tlb, MissThenHit)
{
    Tlb tlb(8, 0, 1);
    EXPECT_FALSE(tlb.access(100));
    EXPECT_TRUE(tlb.access(100));
    EXPECT_EQ(tlb.demandMisses.value(), 1u);
    EXPECT_EQ(tlb.demandAccesses.value(), 2u);
}

TEST(Tlb, WritebackClassCountedSeparately)
{
    Tlb tlb(8, 0, 1);
    tlb.access(1, StreamClass::Writeback);
    tlb.access(2, StreamClass::Demand);
    EXPECT_EQ(tlb.writebackAccesses.value(), 1u);
    EXPECT_EQ(tlb.writebackMisses.value(), 1u);
    EXPECT_EQ(tlb.demandAccesses.value(), 1u);
    // A write-back fill serves later demand accesses.
    EXPECT_TRUE(tlb.access(1, StreamClass::Demand));
}

TEST(Tlb, FullyAssociativeHoldsWorkingSet)
{
    Tlb tlb(16, 0, 7);
    for (int sweep = 0; sweep < 20; ++sweep) {
        for (PageNum p = 0; p < 16; ++p)
            tlb.access(p);
    }
    // Only cold misses: the working set fits.
    EXPECT_EQ(tlb.demandMisses.value(), 16u);
}

TEST(Tlb, DirectMappedConflictsThrash)
{
    Tlb tlb(16, 1, 7);
    // Two pages with the same low bits conflict in a 16-set DM TLB.
    for (int i = 0; i < 100; ++i) {
        tlb.access(0);
        tlb.access(16);
    }
    EXPECT_EQ(tlb.demandMisses.value(), 200u);
}

TEST(Tlb, DirectMappedDistinctSetsNoConflicts)
{
    Tlb tlb(16, 1, 7);
    for (int sweep = 0; sweep < 10; ++sweep) {
        for (PageNum p = 0; p < 16; ++p)
            tlb.access(p);
    }
    EXPECT_EQ(tlb.demandMisses.value(), 16u);
}

TEST(Tlb, SetAssociativeGeometry)
{
    Tlb tlb(16, 4, 3);
    EXPECT_EQ(tlb.organisation(), "4way");
    // 4 sets x 4 ways: 4 pages mapping to set 0 all fit.
    for (int sweep = 0; sweep < 5; ++sweep) {
        for (PageNum p = 0; p < 16; p += 4)
            tlb.access(p);
    }
    EXPECT_EQ(tlb.demandMisses.value(), 4u);
}

TEST(Tlb, InvalidateDropsEntry)
{
    Tlb fa(8, 0, 1);
    fa.access(5);
    EXPECT_TRUE(fa.invalidate(5));
    EXPECT_FALSE(fa.contains(5));
    EXPECT_FALSE(fa.invalidate(5));

    Tlb dm(8, 1, 1);
    dm.access(5);
    EXPECT_TRUE(dm.invalidate(5));
    EXPECT_FALSE(dm.contains(5));
}

TEST(Tlb, FlushDropsAll)
{
    Tlb tlb(8, 0, 1);
    for (PageNum p = 0; p < 8; ++p)
        tlb.access(p);
    tlb.flush();
    for (PageNum p = 0; p < 8; ++p)
        EXPECT_FALSE(tlb.contains(p));
}

TEST(Tlb, RejectsBadGeometry)
{
    EXPECT_THROW(Tlb(10, 4, 1), FatalError);   // not divisible
    EXPECT_THROW(Tlb(24, 2, 1), FatalError);   // 12 sets: not pow2
    // 0 entries is legal: software-managed translation.
    EXPECT_NO_THROW(Tlb(0, 0, 1));
}

TEST(Tlb, OrganisationNames)
{
    EXPECT_EQ(Tlb(8, 0, 1).organisation(), "FA");
    EXPECT_EQ(Tlb(8, 1, 1).organisation(), "DM");
    EXPECT_EQ(Tlb(8, 2, 1).organisation(), "2way");
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

struct TlbParam
{
    unsigned entries;
    unsigned assoc;
};

class TlbProperty : public ::testing::TestWithParam<TlbParam>
{
};

/** Occupancy: at most 'entries' pages resident at once. */
TEST_P(TlbProperty, OccupancyBounded)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(entries, assoc, 3);
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        tlb.access(rng.below(10000));
    unsigned resident = 0;
    for (PageNum p = 0; p < 10000; ++p) {
        if (tlb.contains(p))
            ++resident;
    }
    EXPECT_LE(resident, entries);
}

/** An access always leaves the page resident. */
TEST_P(TlbProperty, AccessedPageIsResident)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(entries, assoc, 3);
    Rng rng(23);
    for (int i = 0; i < 5000; ++i) {
        const PageNum p = rng.below(512);
        tlb.access(p);
        ASSERT_TRUE(tlb.contains(p));
    }
}

/** Larger TLBs of the same organisation never miss more. */
TEST_P(TlbProperty, MonotoneInSize)
{
    const auto [entries, assoc] = GetParam();
    if (assoc > 1)
        GTEST_SKIP() << "monotonicity only guaranteed FA/DM here";
    Tlb small(entries, assoc, 3);
    Tlb big(entries * 4, assoc, 3);
    Rng rng(31);
    // A looping working set (no randomness in the stream).
    for (int i = 0; i < 20000; ++i) {
        const PageNum p = (i * 7) % (entries * 2);
        small.access(p);
        big.access(p);
    }
    EXPECT_LE(big.misses(), small.misses());
}

INSTANTIATE_TEST_SUITE_P(
    Organisations, TlbProperty,
    ::testing::Values(TlbParam{8, 0}, TlbParam{8, 1}, TlbParam{32, 0},
                      TlbParam{32, 1}, TlbParam{64, 2}, TlbParam{128, 0},
                      TlbParam{128, 1}, TlbParam{512, 0}));

// ---------------------------------------------------------------------
// Shadow banks.
// ---------------------------------------------------------------------

TEST(ShadowBank, HasEverySizeInBothOrganisations)
{
    ShadowBank bank(1);
    for (unsigned size : shadowSizes()) {
        EXPECT_NE(bank.find(size, 0), nullptr);
        EXPECT_NE(bank.find(size, 1), nullptr);
    }
    EXPECT_EQ(bank.find(9999, 0), nullptr);
}

TEST(ShadowBank, FeedsAllMembers)
{
    ShadowBank bank(1);
    bank.access(42);
    bank.access(42);
    for (const auto &tlb : bank.members()) {
        EXPECT_EQ(tlb.demandAccesses.value(), 2u);
        EXPECT_EQ(tlb.demandMisses.value(), 1u);
    }
}

TEST(ShadowBank, SumAcrossBanks)
{
    std::vector<ShadowBank> banks;
    banks.emplace_back(1);
    banks.emplace_back(2);
    banks[0].access(1);
    banks[1].access(1);
    banks[1].access(2, StreamClass::Writeback);
    const ShadowTotals t = sumShadow(banks, 8, 0);
    EXPECT_EQ(t.demandAccesses, 2u);
    EXPECT_EQ(t.demandMisses, 2u);
    EXPECT_EQ(t.writebackMisses, 1u);
    EXPECT_EQ(t.misses(), 3u);
}

/** Bigger fully associative shadow members never miss more. */
TEST(ShadowBank, SizeMonotonicityOnLoopingStream)
{
    ShadowBank bank(5);
    for (int i = 0; i < 30000; ++i)
        bank.access((i * 13) % 300);
    std::uint64_t prev = ~std::uint64_t{0};
    for (unsigned size : shadowSizes()) {
        const Tlb *tlb = bank.find(size, 0);
        EXPECT_LE(tlb->misses(), prev) << "size " << size;
        prev = tlb->misses();
    }
}

// ---------------------------------------------------------------------
// Index shift: the DLB set-indexing fix of Figure 6.
// ---------------------------------------------------------------------

/**
 * A home-node DLB only ever sees vpns whose low p bits equal the home
 * id. Without an index shift, a direct-mapped DLB would map them all
 * to one set; with the Figure 6 indexing (skip the p home bits) they
 * spread across the sets.
 */
TEST(TlbIndexShift, DirectMappedDlbSpreadsHomeLocalPages)
{
    const unsigned homeBits = 5;  // 32 nodes
    Tlb naive(8, 1, 3, 0);
    Tlb shifted(8, 1, 3, homeBits);
    // Pages of home 7: vpn = 7, 39, 71, ... (vpn mod 32 == 7).
    for (int sweep = 0; sweep < 10; ++sweep) {
        for (PageNum i = 0; i < 8; ++i) {
            naive.access(7 + 32 * i);
            shifted.access(7 + 32 * i);
        }
    }
    // Naive: all 8 pages fight over one set -> misses every time.
    EXPECT_EQ(naive.demandMisses.value(), 80u);
    // Shifted: each page gets its own set -> cold misses only.
    EXPECT_EQ(shifted.demandMisses.value(), 8u);
}

TEST(TlbIndexShift, InvalidateAndContainsHonourShift)
{
    Tlb tlb(8, 1, 3, 5);
    tlb.access(7 + 32 * 3);
    EXPECT_TRUE(tlb.contains(7 + 32 * 3));
    EXPECT_TRUE(tlb.invalidate(7 + 32 * 3));
    EXPECT_FALSE(tlb.contains(7 + 32 * 3));
}

TEST(TlbIndexShift, FullyAssociativeUnaffected)
{
    Tlb a(8, 0, 3, 0);
    Tlb b(8, 0, 3, 5);
    for (PageNum i = 0; i < 100; ++i) {
        a.access(i * 32 + 7);
        b.access(i * 32 + 7);
    }
    EXPECT_EQ(a.misses(), b.misses());
}
