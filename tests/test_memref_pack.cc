/**
 * @file
 * Tests for the packed memref trace format: encode/decode round
 * trips, writer/reader round trips, and — most importantly — that
 * every way a trace file can be unusable (bad magic, unknown version,
 * truncation, corruption, out-of-range fields) is rejected with a
 * clear TraceFormatError, never a crash and never a silent partial
 * replay.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/memref.hh"
#include "sim/memref_pack.hh"

using namespace vcoma;

namespace
{

struct TempDir
{
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("vcoma_test_pack_" + std::to_string(::getpid()));
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::filesystem::path path;
};

/** The events thread @p tid of the reference trace carries. */
std::vector<MemRef>
sampleStream(unsigned tid)
{
    std::vector<MemRef> refs;
    refs.push_back(MemRef::read(0x1000 * (tid + 1), 3 + tid));
    refs.push_back(MemRef::write(0x1000 * (tid + 1) + 64, 2));
    refs.push_back(MemRef::barrier(7, 5));
    refs.push_back(MemRef::lock(tid));
    refs.push_back(MemRef::read(0xdeadbeefULL << tid, 1));
    refs.push_back(MemRef::unlock(tid));
    return refs;
}

/** Write the reference trace (3 threads) and return its path. */
std::string
writeSampleTrace(const TempDir &dir, const std::string &file = "t.vctrace")
{
    const std::string path = (dir.path / file).string();
    PackedTraceWriter writer(path, 3, "test-key", "TESTLOAD",
                             "some params", 4096);
    for (unsigned tid = 0; tid < 3; ++tid) {
        for (const MemRef &r : sampleStream(tid))
            writer.append(tid, r);
    }
    std::string error;
    EXPECT_TRUE(writer.finalize(&error)) << error;
    return path;
}

std::vector<unsigned char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Opening @p path must throw TraceFormatError mentioning @p detail. */
void
expectRejected(const std::string &path, const std::string &detail)
{
    try {
        PackedTrace trace(path);
        FAIL() << "opened a trace that should be rejected (" << detail
               << ")";
    } catch (const TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find(detail), std::string::npos)
            << "error text '" << e.what() << "' does not mention '"
            << detail << "'";
    }
}

void
expectSameRef(const MemRef &a, const MemRef &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.vaddr, b.vaddr);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.syncId, b.syncId);
}

} // namespace

TEST(MemRefPack, PackUnpackRoundTripsEveryKind)
{
    for (const MemRef &ref :
         {MemRef::read(0x123456789abcdef0ULL, 42),
          MemRef::write(0xfedcba9876543210ULL, 1),
          MemRef::barrier(99, 7), MemRef::lock(3, 2),
          MemRef::unlock(3)}) {
        unsigned char bytes[packedRecordBytes];
        packMemRef(ref, bytes);
        expectSameRef(unpackMemRef(bytes), ref);
    }
}

TEST(MemRefPack, PackedBytesAreDeterministic)
{
    // The padding must be zeroed even when the scratch buffer is not:
    // recorded traces are compared and checksummed byte for byte.
    unsigned char a[packedRecordBytes];
    unsigned char b[packedRecordBytes];
    std::memset(a, 0x00, sizeof(a));
    std::memset(b, 0xff, sizeof(b));
    const MemRef ref = MemRef::read(0x42, 11);
    packMemRef(ref, a);
    packMemRef(ref, b);
    EXPECT_EQ(std::memcmp(a, b, packedRecordBytes), 0);
}

TEST(MemRefPack, WriterReaderRoundTrip)
{
    TempDir dir;
    const std::string path = writeSampleTrace(dir);

    PackedTrace trace(path);
    EXPECT_EQ(trace.threads(), 3u);
    EXPECT_EQ(trace.totalEvents(), 18u);
    EXPECT_EQ(trace.sharedBytes(), 4096u);
    EXPECT_EQ(trace.key(), "test-key");
    EXPECT_EQ(trace.workloadName(), "TESTLOAD");
    EXPECT_EQ(trace.parameters(), "some params");
    for (unsigned tid = 0; tid < 3; ++tid) {
        const std::vector<MemRef> expect = sampleStream(tid);
        const auto got = trace.stream(tid);
        ASSERT_EQ(got.size(), expect.size()) << "tid " << tid;
        for (std::size_t i = 0; i < expect.size(); ++i)
            expectSameRef(got[i], expect[i]);
    }
}

TEST(MemRefPack, EmptyStreamsAreRepresentable)
{
    // A thread that never references shared memory records an empty
    // stream, not a malformed file.
    TempDir dir;
    const std::string path = (dir.path / "empty.vctrace").string();
    PackedTraceWriter writer(path, 2, "k", "N", "p", 0);
    writer.append(0, MemRef::read(0x10, 1));
    ASSERT_TRUE(writer.finalize());

    PackedTrace trace(path);
    EXPECT_EQ(trace.stream(0).size(), 1u);
    EXPECT_EQ(trace.stream(1).size(), 0u);
}

TEST(MemRefPack, AbandonedWriterPublishesNothing)
{
    TempDir dir;
    const std::string path = (dir.path / "gone.vctrace").string();
    {
        PackedTraceWriter writer(path, 1, "k", "N", "p", 0);
        for (int i = 0; i < 10000; ++i)  // force staging flushes
            writer.append(0, MemRef::read(i * 64, 1));
        // No finalize(): the run aborted.
    }
    EXPECT_FALSE(std::filesystem::exists(path));
    // And no staging debris either.
    EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

TEST(MemRefPack, FinalizeTwiceFails)
{
    TempDir dir;
    const std::string path = (dir.path / "once.vctrace").string();
    PackedTraceWriter writer(path, 1, "k", "N", "p", 0);
    writer.append(0, MemRef::read(0x10, 1));
    ASSERT_TRUE(writer.finalize());
    EXPECT_TRUE(writer.finalized());
    std::string error;
    EXPECT_FALSE(writer.finalize(&error));
    EXPECT_NE(error.find("twice"), std::string::npos) << error;
}

TEST(MemRefPack, RejectsMissingFile)
{
    TempDir dir;
    expectRejected((dir.path / "absent.vctrace").string(),
                   "cannot open");
}

TEST(MemRefPack, RejectsBadMagic)
{
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes[0] ^= 0x40;
    writeFile(path, bytes);
    expectRejected(path, "bad magic");
}

TEST(MemRefPack, RejectsArbitraryTextFile)
{
    TempDir dir;
    const std::string path = (dir.path / "notes.vctrace").string();
    std::ofstream(path) << "this is not a trace, whatever the "
                           "extension claims. padding padding padding "
                           "to get past the header-size check.\n";
    expectRejected(path, "bad magic");
}

TEST(MemRefPack, RejectsUnknownVersion)
{
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes[8] = 99;  // u32 version at offset 8 (little-endian)
    bytes[9] = bytes[10] = bytes[11] = 0;
    writeFile(path, bytes);
    expectRejected(path, "version 99 unsupported");
}

TEST(MemRefPack, RejectsFileSmallerThanHeader)
{
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes.resize(packedHeaderBytes - 1);
    writeFile(path, bytes);
    expectRejected(path, "truncated");
}

TEST(MemRefPack, RejectsTruncatedPayload)
{
    // A torn copy that lost the tail: the index promises more payload
    // than the file holds.
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes.resize(bytes.size() - packedRecordBytes);
    writeFile(path, bytes);
    expectRejected(path, "truncated");
}

TEST(MemRefPack, RejectsGrownFile)
{
    // Stray bytes appended after the payload are just as suspect as
    // missing ones.
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes.resize(bytes.size() + 8, 0);
    writeFile(path, bytes);
    expectRejected(path, "truncated or grown");
}

TEST(MemRefPack, RejectsCorruptPayload)
{
    // Any flipped payload byte fails the checksum before the records
    // are ever interpreted.
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes[bytes.size() - 3] ^= 0x01;
    writeFile(path, bytes);
    expectRejected(path, "checksum mismatch");
}

TEST(MemRefPack, RejectsOutOfRangeKind)
{
    // A record whose kind byte is outside the MemRef::Kind range must
    // be rejected at open() even when the checksum matches (i.e. the
    // writer itself was fed garbage), so the replay hot loop never
    // sees an invalid enum.
    TempDir dir;
    const std::string path = (dir.path / "kind.vctrace").string();
    PackedTraceWriter writer(path, 1, "k", "N", "p", 0);
    MemRef bad = MemRef::read(0x10, 1);
    bad.kind = static_cast<MemRef::Kind>(7);
    writer.append(0, bad);
    ASSERT_TRUE(writer.finalize());
    expectRejected(path, "invalid kind/type");
}

TEST(MemRefPack, RejectsZeroThreads)
{
    TempDir dir;
    const std::string path = writeSampleTrace(dir);
    auto bytes = readFile(path);
    bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0;  // u32 threads
    writeFile(path, bytes);
    expectRejected(path, "zero threads");
}
