/**
 * @file
 * Full-machine integration runs: every paper benchmark on the
 * baseline 32-node machine (scaled-down data sets), checked against
 * the coherence invariants, the accounting identity, and the
 * headline qualitative results of the paper.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "checkers.hh"
#include "harness/runner.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/** One simulation per (benchmark, scheme), memoised across tests. */
const RunStats &
runBaseline(const std::string &name, Scheme scheme,
            Machine **out = nullptr)
{
    struct Entry
    {
        std::unique_ptr<Machine> machine;
        RunStats stats;
    };
    static std::map<std::pair<std::string, Scheme>, Entry> memo;
    auto key = std::make_pair(name, scheme);
    auto it = memo.find(key);
    if (it == memo.end()) {
        MachineConfig cfg = baselineConfig(scheme, 8);
        cfg.timedTranslation = false;
        Entry entry;
        entry.machine = std::make_unique<Machine>(cfg);
        WorkloadParams p;
        p.threads = cfg.numNodes;
        p.scale = 0.05;
        auto w = makeWorkload(name, p);
        entry.stats = entry.machine->run(*w);
        it = memo.emplace(key, std::move(entry)).first;
    }
    if (out)
        *out = it->second.machine.get();
    return it->second.stats;
}

} // namespace

class BaselineRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BaselineRun, CompletesWithInvariantsIntact)
{
    Machine *machine = nullptr;
    const RunStats stats =
        runBaseline(GetParam(), Scheme::VCOMA, &machine);
    ASSERT_NE(machine, nullptr);
    EXPECT_GT(stats.totalRefs(), 1000u);
    EXPECT_GT(stats.execTime, 0u);
    checkCoherenceInvariants(*machine);
    checkInclusion(*machine);
    // Accounting identity on every processor.
    for (const auto &cpu : stats.cpus)
        EXPECT_EQ(cpu.accounted(), cpu.finish);
}

TEST_P(BaselineRun, DlbMissRateIsNegligible)
{
    const RunStats stats = runBaseline(GetParam(), Scheme::VCOMA);
    // The headline result: V-COMA's translation misses are negligible
    // per processor reference — at 32 DLB entries, under 0.5% for
    // every benchmark (Table 2's V-COMA columns).
    EXPECT_LT(stats.missRatePct(32, 0, true), 0.5) << GetParam();
}

TEST_P(BaselineRun, VcomaBeatsL0TlbOnMisses)
{
    const RunStats vcoma = runBaseline(GetParam(), Scheme::VCOMA);
    const RunStats l0 = runBaseline(GetParam(), Scheme::L0);
    // At 8 entries the shared DLB must miss (much) less than the
    // classic TLB for every benchmark.
    EXPECT_LT(vcoma.missRatePct(8, 0, true),
              l0.missRatePct(8, 0, true))
        << GetParam();
}

TEST_P(BaselineRun, FilteringOrdersSchemes)
{
    // L3's TLB point sees no more demand accesses than L0's.
    const RunStats l0 = runBaseline(GetParam(), Scheme::L0);
    const RunStats l3 = runBaseline(GetParam(), Scheme::L3);
    EXPECT_LE(l3.shadowPoint(8, 0).demandAccesses,
              l0.shadowPoint(8, 0).demandAccesses)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    PaperBenchmarks, BaselineRun,
    ::testing::Values("RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE",
                      "BARNES"));
