/** @file Unit and property tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"

using namespace vcoma;

namespace
{

CacheConfig
smallWriteBack()
{
    return CacheConfig{1024, 2, 64, /*writeThrough=*/false,
                       /*writeAllocate=*/true};
}

CacheConfig
smallWriteThrough()
{
    return CacheConfig{1024, 1, 32, /*writeThrough=*/true,
                       /*writeAllocate=*/false};
}

} // namespace

TEST(Cache, ReadMissThenHit)
{
    Cache c("t", smallWriteBack());
    auto first = c.access(0x1000, RefType::Read);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.allocated);
    auto second = c.access(0x1000, RefType::Read);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(c.readMisses.value(), 1u);
    EXPECT_EQ(c.readHits.value(), 1u);
}

TEST(Cache, SameBlockDifferentWordsHit)
{
    Cache c("t", smallWriteBack());
    c.access(0x1000, RefType::Read);
    EXPECT_TRUE(c.access(0x1004, RefType::Read).hit);
    EXPECT_TRUE(c.access(0x103F, RefType::Read).hit);
    EXPECT_FALSE(c.access(0x1040, RefType::Read).hit);
}

TEST(Cache, WriteBackMarksDirtyAndWritesBack)
{
    Cache c("t", smallWriteBack());
    c.access(0x1000, RefType::Write);  // miss, allocate, dirty
    // Fill the set until 0x1000's block is evicted: set of 0x1000 has
    // 8 sets (1024/2/64); same-set addresses differ by 512 bytes.
    auto r1 = c.access(0x1000 + 512, RefType::Read);
    EXPECT_FALSE(r1.hit);
    auto r2 = c.access(0x1000 + 1024, RefType::Read);
    EXPECT_FALSE(r2.hit);
    EXPECT_TRUE(r2.hasVictim);
    EXPECT_EQ(r2.victim, 0x1000u);
    EXPECT_TRUE(r2.victimDirty);
    EXPECT_EQ(c.writebacks.value(), 1u);
}

TEST(Cache, WriteThroughNeverDirty)
{
    Cache c("t", CacheConfig{1024, 2, 64, /*writeThrough=*/true,
                             /*writeAllocate=*/true});
    c.access(0x1000, RefType::Write);
    c.access(0x1000 + 512, RefType::Read);
    auto r = c.access(0x1000 + 1024, RefType::Read);
    ASSERT_TRUE(r.hasVictim);
    EXPECT_FALSE(r.victimDirty);
    EXPECT_EQ(c.writebacks.value(), 0u);
}

TEST(Cache, NoWriteAllocateSkipsAllocation)
{
    Cache c("t", smallWriteThrough());
    auto w = c.access(0x2000, RefType::Write);
    EXPECT_FALSE(w.hit);
    EXPECT_FALSE(w.allocated);
    EXPECT_FALSE(c.contains(0x2000));
    // But a write to a read-allocated block hits.
    c.access(0x2000, RefType::Read);
    EXPECT_TRUE(c.access(0x2000, RefType::Write).hit);
}

TEST(Cache, LruVictimSelection)
{
    Cache c("t", smallWriteBack());  // 2-way, same-set stride 512
    c.access(0x0000, RefType::Read);
    c.access(0x0200, RefType::Read);
    c.access(0x0000, RefType::Read);  // touch A: B is now LRU
    auto r = c.access(0x0400, RefType::Read);
    ASSERT_TRUE(r.hasVictim);
    EXPECT_EQ(r.victim, 0x0200u);
    EXPECT_TRUE(c.contains(0x0000));
}

TEST(Cache, InvalidateBlock)
{
    Cache c("t", smallWriteBack());
    c.access(0x3000, RefType::Write);
    bool dirty = false;
    EXPECT_TRUE(c.invalidateBlock(0x3000, dirty));
    EXPECT_TRUE(dirty);
    EXPECT_FALSE(c.contains(0x3000));
    EXPECT_FALSE(c.invalidateBlock(0x3000, dirty));
}

TEST(Cache, InvalidateRangeCoversSubBlocks)
{
    // 32-byte blocks; invalidating a 128-byte range kills up to 4.
    Cache c("t", CacheConfig{1024, 4, 32, false, true});
    for (VAddr a = 0x4000; a < 0x4080; a += 32)
        c.access(a, RefType::Write);
    unsigned dirty = 0;
    const unsigned count = c.invalidateRange(0x4000, 128, dirty);
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(dirty, 4u);
    for (VAddr a = 0x4000; a < 0x4080; a += 32)
        EXPECT_FALSE(c.contains(a));
}

TEST(Cache, FlushDropsEverythingKeepsStats)
{
    Cache c("t", smallWriteBack());
    c.access(0x1000, RefType::Read);
    c.access(0x2000, RefType::Write);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_EQ(c.readMisses.value(), 1u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache("bad", CacheConfig{1000, 2, 64, false, true}),
                 FatalError);
    EXPECT_THROW(Cache("bad", CacheConfig{1024, 0, 64, false, true}),
                 FatalError);
    EXPECT_THROW(Cache("bad", CacheConfig{1024, 2, 48, false, true}),
                 FatalError);
}

// ---------------------------------------------------------------------
// Property tests over several geometries.
// ---------------------------------------------------------------------

class CacheProperty : public ::testing::TestWithParam<CacheConfig>
{
};

/** Capacity invariant: never more distinct blocks resident than ways. */
TEST_P(CacheProperty, CapacityNeverExceeded)
{
    const CacheConfig cfg = GetParam();
    Cache c("p", cfg);
    Rng rng(99);
    std::uint64_t resident = 0;
    for (int i = 0; i < 20000; ++i) {
        const VAddr a = rng.below(1 << 20);
        const auto type =
            rng.below(3) == 0 ? RefType::Write : RefType::Read;
        const auto r = c.access(a, type);
        if (r.allocated && !r.hasVictim)
            ++resident;
        ASSERT_LE(resident, cfg.numBlocks());
    }
}

/** Determinism: identical access streams produce identical stats. */
TEST_P(CacheProperty, Deterministic)
{
    const CacheConfig cfg = GetParam();
    Cache a("a", cfg);
    Cache b("b", cfg);
    Rng r1(5);
    Rng r2(5);
    for (int i = 0; i < 5000; ++i) {
        a.access(r1.below(1 << 18), RefType::Read);
        b.access(r2.below(1 << 18), RefType::Read);
    }
    EXPECT_EQ(a.readHits.value(), b.readHits.value());
    EXPECT_EQ(a.readMisses.value(), b.readMisses.value());
}

/** A working set no larger than one set's ways only cold-misses. */
TEST_P(CacheProperty, SmallWorkingSetOnlyColdMisses)
{
    const CacheConfig cfg = GetParam();
    Cache c("p", cfg);
    // 'assoc' blocks that all live in set 0.
    const VAddr stride = cfg.numSets() * cfg.blockBytes;
    for (unsigned sweep = 0; sweep < 10; ++sweep) {
        for (unsigned w = 0; w < cfg.assoc; ++w)
            c.access(w * stride, RefType::Read);
    }
    EXPECT_EQ(c.readMisses.value(), cfg.assoc);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(
        CacheConfig{1024, 1, 32, true, false},
        CacheConfig{1024, 2, 64, false, true},
        CacheConfig{4096, 4, 64, false, true},
        CacheConfig{16 * 1024, 1, 32, true, false},
        CacheConfig{64 * 1024, 4, 64, false, true},
        CacheConfig{8192, 8, 128, false, true}));
