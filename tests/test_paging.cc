/**
 * @file
 * Paging-pressure tests: the page daemon's swap-outs when a global
 * page set exceeds the pressure threshold (Section 4.3), page purges,
 * TLB/DLB shoot-downs, and correct reloads after a swap.
 */

#include <gtest/gtest.h>

#include "checkers.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

namespace
{

/** A machine whose global page sets hold very few pages. */
MachineConfig
crampedConfig(Scheme scheme)
{
    MachineConfig cfg = tinyConfig(scheme);
    // 16 colours, capacity 4*4=16 pages each by default; drop the
    // threshold so the daemon reacts at half occupancy.
    cfg.pressureThreshold = 0.5;
    return cfg;
}

} // namespace

class Paging : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(Paging, DaemonSwapsWhenPressureExceedsThreshold)
{
    Machine m(crampedConfig(GetParam()));
    // Touch 12 pages per colour (sequential pages cycle through all
    // colours under every placement policy): capacity is 16 with
    // threshold 0.5, so the daemon must start swapping beyond 8.
    const std::uint64_t pages = 12 * m.layout().numColours();
    Tick t = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        m.access(0, RefType::Read,
                 0x100000 + i * m.config().pageBytes, t);
        t += 5000;
    }
    EXPECT_GT(m.pageTable().swapOuts.value(), 0u);
    EXPECT_LE(m.pressure().maxPressure(), 0.5 + 1e-9);
    checkCoherenceInvariants(m);
}

TEST_P(Paging, SwappedPageReloadsWithData)
{
    Machine m(crampedConfig(GetParam()));
    const VAddr va = 0x100000;
    m.access(1, RefType::Write, va, 0);
    const PageNum vpn = m.layout().vpn(va);
    m.engine().purgePage(vpn);
    m.pageTable().swapOut(vpn);
    EXPECT_FALSE(m.pageTable().find(vpn)->resident);
    // Re-touch: a reload (page fault) must occur and the access
    // completes without coherence damage.
    EXPECT_NO_THROW(m.access(2, RefType::Read, va, 50000));
    EXPECT_EQ(m.pageTable().pageReloads.value(), 1u);
    EXPECT_TRUE(m.pageTable().find(vpn)->resident);
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

TEST_P(Paging, PurgeShootsDownTranslations)
{
    Machine m(crampedConfig(GetParam()));
    m.access(0, RefType::Read, 0x100000, 0);
    m.access(1, RefType::Read, 0x100000, 1000);
    const PageNum vpn = m.layout().vpn(0x100000);
    m.engine().purgePage(vpn);
    m.pageTable().swapOut(vpn);
    EXPECT_FALSE(m.pageTable().find(vpn)->resident);
    // No node retains data, no TLB/DLB retains the mapping.
    for (unsigned n = 0; n < m.numNodes(); ++n) {
        if (m.node(n).tlb) {
            EXPECT_FALSE(m.node(n).tlb->contains(vpn));
        }
        if (m.node(n).dlb) {
            EXPECT_FALSE(m.node(n).dlb->tlb().contains(vpn));
        }
    }
    checkCoherenceInvariants(m);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, Paging,
    ::testing::Values(Scheme::L0, Scheme::L3, Scheme::VCOMA),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name = schemeName(info.param);
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        return name;
    });
