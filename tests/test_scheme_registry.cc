/**
 * @file
 * Tests for the translation-scheme registry: the strict parse/name
 * round trip, cache-key uniqueness, the legacy/modern partition, the
 * modern schemes (VICTIMA, NMT) running under full invariant
 * checking, and the byte-identity of the five 1998 schemes' stats
 * sheets against pre-refactor golden files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "sim/machine.hh"
#include "translation/scheme.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

namespace fs = std::filesystem;

/** Fresh temp directory, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        path = fs::temp_directory_path() /
               ("vcoma_registry_test_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    fs::path path;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(SchemeRegistry, EnumOrderAndPartition)
{
    const auto &reg = schemeRegistry();
    ASSERT_FALSE(reg.empty());
    for (std::size_t i = 0; i < reg.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(reg[i].id), i);
        EXPECT_EQ(static_cast<std::size_t>(reg[i].traits.scheme), i);
    }
    // legacy + modern partition the registry, preserving order.
    EXPECT_EQ(legacySchemes().size() + modernSchemes().size(),
              allRegisteredSchemes().size());
    for (Scheme s : legacySchemes())
        EXPECT_TRUE(schemeDescriptor(s).legacy);
    for (Scheme s : modernSchemes())
        EXPECT_FALSE(schemeDescriptor(s).legacy);
    // The paper's five, in table order, must stay exactly these.
    const std::vector<Scheme> paper{Scheme::L0, Scheme::L1, Scheme::L2,
                                    Scheme::L3, Scheme::VCOMA};
    EXPECT_EQ(legacySchemes(), paper);
}

TEST(SchemeRegistry, NameParseRoundTrip)
{
    std::set<std::string> names;
    std::set<std::string> tokens;
    for (Scheme s : allRegisteredSchemes()) {
        const SchemeDescriptor &d = schemeDescriptor(s);
        EXPECT_STRNE(d.name, "");
        EXPECT_STRNE(d.timedLabel, "");
        EXPECT_STRNE(d.summary, "");
        // Canonical names are unique...
        EXPECT_TRUE(names.insert(d.name).second)
            << "duplicate scheme name " << d.name;
        // ...and every spelling parses back to exactly this scheme.
        Scheme parsed;
        ASSERT_TRUE(tryParseScheme(d.name, parsed)) << d.name;
        EXPECT_EQ(parsed, s);
        EXPECT_EQ(parseScheme(d.name), s);
        EXPECT_TRUE(tokens.insert(d.name).second);
        for (const std::string &alias : d.aliases) {
            ASSERT_TRUE(tryParseScheme(alias, parsed)) << alias;
            EXPECT_EQ(parsed, s) << alias;
            EXPECT_TRUE(tokens.insert(alias).second)
                << "alias " << alias << " claimed twice";
        }
        // schemeName is the descriptor name (cache-key token).
        EXPECT_STREQ(schemeName(s), d.name);
    }
}

TEST(SchemeRegistry, UnknownSchemesFailClosed)
{
    Scheme out;
    EXPECT_FALSE(tryParseScheme("L9", out));
    EXPECT_FALSE(tryParseScheme("", out));
    EXPECT_FALSE(tryParseScheme("l0-tlb", out)); // strict spelling
    EXPECT_THROW(parseScheme("L9"), FatalError);
    // Raw integers outside the registry are rejected everywhere.
    const unsigned count =
        static_cast<unsigned>(allRegisteredSchemes().size());
    EXPECT_TRUE(isKnownScheme(count - 1));
    EXPECT_FALSE(isKnownScheme(count));
    EXPECT_FALSE(isKnownScheme(255));
    EXPECT_THROW(schemeName(static_cast<Scheme>(count)), FatalError);
    EXPECT_THROW(schemeTraits(static_cast<Scheme>(count)), FatalError);
}

TEST(SchemeRegistry, CacheKeysUniquePerScheme)
{
    std::set<std::string> keys;
    for (Scheme s : allRegisteredSchemes()) {
        ExperimentConfig cfg;
        cfg.scheme = s;
        EXPECT_TRUE(keys.insert(cfg.key()).second)
            << "cache key collision for " << schemeName(s);
    }
    // The legacy five keep their historic key spellings: the on-disk
    // cache written before the registry refactor must stay warm.
    ExperimentConfig cfg;
    cfg.workload = "FFT";
    cfg.scale = 0.05;
    cfg.scheme = Scheme::L0;
    EXPECT_EQ(cfg.key(),
              "FFT-L0-TLB-e8-a0-t0-w1-v2_0-n32-s0.05-r1-k4-p40");
    cfg.scheme = Scheme::VCOMA;
    EXPECT_EQ(cfg.key(),
              "FFT-V-COMA-e8-a0-t0-w1-v2_0-n32-s0.05-r1-k4-p40");
}

TEST(SchemeRegistry, TraitsMatchModernSchemeModels)
{
    const SchemeTraits victima = schemeTraits(Scheme::VICTIMA);
    EXPECT_TRUE(victima.perNodeTlb);
    EXPECT_TRUE(victima.slcTlbSpill);
    EXPECT_EQ(victima.tlbPoint, TlbPoint::PreFlc);
    EXPECT_FALSE(victima.hasDlb);
    EXPECT_FALSE(victima.amVirtual);
    EXPECT_EQ(victima.placement, PlacementPolicy::RoundRobin);

    const SchemeTraits nmt = schemeTraits(Scheme::NMT);
    EXPECT_FALSE(nmt.perNodeTlb);
    EXPECT_FALSE(nmt.hasDlb);
    EXPECT_TRUE(nmt.homeTranslation);
    EXPECT_TRUE(nmt.amVirtual);
    EXPECT_EQ(nmt.tlbPoint, TlbPoint::None);
    EXPECT_FALSE(nmt.hasPhysicalAddresses());

    // The old split-brain predicate is now a registry view.
    for (Scheme s : allRegisteredSchemes())
        EXPECT_EQ(schemeUsesVirtualAm(s), schemeTraits(s).amVirtual);
}

namespace
{

/** Small machine + workload for the modern-scheme invariant runs. */
RunStats
runTinyChecked(Scheme scheme)
{
    MachineConfig cfg = tinyConfig(scheme, /*entries=*/2);
    cfg.checkLevel = 2; // invariant sweep after every reference
    Machine machine(cfg);
    WorkloadParams params;
    params.threads = cfg.numNodes;
    params.scale = 0.05;
    params.seed = 7;
    auto workload = makeWorkload("UNIFORM", params);
    return machine.run(*workload);
}

} // namespace

TEST(ModernSchemes, VictimaRunsUnderFullChecking)
{
    const RunStats stats = runTinyChecked(Scheme::VICTIMA);
    EXPECT_GT(stats.totalRefs(), 0u);
    // The spill structure actually participated: TLB victims filled
    // it and TLB misses probed it.
    EXPECT_GT(stats.tlbAccesses, 0u);
    EXPECT_GT(stats.tlbSpillFills, 0u);
    EXPECT_GT(stats.tlbSpillProbes, 0u);
    // A probe either hits (rescued walk) or misses; hits never exceed
    // probes, and rescued walks never exceed TLB misses.
    EXPECT_LE(stats.tlbSpillHits, stats.tlbSpillProbes);
    EXPECT_LE(stats.tlbSpillHits, stats.tlbMisses);
}

TEST(ModernSchemes, NmtRunsUnderFullChecking)
{
    const RunStats stats = runTinyChecked(Scheme::NMT);
    EXPECT_GT(stats.totalRefs(), 0u);
    // No translation structures at all: nothing accessed, nothing
    // missed, no translation stall.
    EXPECT_EQ(stats.tlbAccesses, 0u);
    EXPECT_EQ(stats.tlbMisses, 0u);
    EXPECT_EQ(stats.tlbSpillProbes, 0u);
    EXPECT_EQ(stats.totalXlatStall(), 0u);
}

TEST(ModernSchemes, LegacySchemesHaveNoSpillCounters)
{
    for (Scheme s : legacySchemes()) {
        SCOPED_TRACE(schemeName(s));
        const RunStats stats = runTinyChecked(s);
        EXPECT_EQ(stats.tlbSpillProbes, 0u);
        EXPECT_EQ(stats.tlbSpillHits, 0u);
        EXPECT_EQ(stats.tlbSpillFills, 0u);
    }
}

/**
 * The refactor's headline guarantee: the five 1998 schemes produce
 * byte-identical stats sheets (and unchanged cache keys) against
 * goldens recorded with the pre-refactor simulator. The golden
 * directory holds one sheet per config, named by its cache key.
 */
TEST(LegacyEquivalence, GoldenSheetsAreByteIdentical)
{
    const fs::path goldenDir = VCOMA_GOLDEN_DIR;
    ASSERT_TRUE(fs::is_directory(goldenDir)) << goldenDir;

    // Reconstruct each golden's config from its file name's tokens;
    // the grid is small enough to enumerate and match by key.
    std::vector<ExperimentConfig> grid;
    for (const char *workload : {"FFT", "RADIX"}) {
        for (Scheme s : legacySchemes()) {
            for (bool timed : {false, true}) {
                for (bool wback : {true, false}) {
                    ExperimentConfig cfg;
                    cfg.workload = workload;
                    cfg.scheme = s;
                    cfg.timedTranslation = timed;
                    cfg.writebacksAccessTlb = wback;
                    cfg.scale = 0.05;
                    grid.push_back(cfg);
                }
            }
        }
    }

    std::size_t goldens = 0;
    TempDir tmp;
    Runner runner(tmp.path.string());
    std::vector<ExperimentConfig> wanted;
    for (const ExperimentConfig &cfg : grid) {
        if (fs::exists(goldenDir / (cfg.key() + ".txt")))
            wanted.push_back(cfg);
    }
    // Every golden sheet must be claimed by a reconstructed config:
    // if a key ever drifts, the count (not just a diff) catches it.
    for (const auto &entry : fs::directory_iterator(goldenDir))
        if (entry.path().extension() == ".txt")
            ++goldens;
    ASSERT_EQ(wanted.size(), goldens);
    ASSERT_GE(goldens, 16u);

    runner.runAll(wanted);
    for (const ExperimentConfig &cfg : wanted) {
        SCOPED_TRACE(cfg.key());
        const fs::path fresh = tmp.path / (cfg.key() + ".txt");
        ASSERT_TRUE(fs::exists(fresh));
        EXPECT_EQ(slurp(goldenDir / (cfg.key() + ".txt")),
                  slurp(fresh));
    }
}
