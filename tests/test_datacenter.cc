/**
 * @file
 * Tests for the datacenter frontend: the Zipfian rank sampler, the
 * KVLOOKUP/GRAPH/STREAMJOIN kernels and their inline knob spelling,
 * the text<->packed trace converter behind tools/vcoma_trace, and
 * the TRACE:<path> workload spelling end to end through the
 * simulation service.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "harness/runner.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "sim/machine.hh"
#include "sim/memref_pack.hh"
#include "sim/run_stats_json.hh"
#include "sim/trace_convert.hh"
#include "translation/system_builder.hh"
#include "workloads/replay.hh"
#include "workloads/workload.hh"
#include "workloads/zipf.hh"

using namespace vcoma;

namespace
{

struct TempDir
{
    TempDir()
    {
        static int seq = 0;
        path = std::filesystem::temp_directory_path() /
               ("vcoma_test_dc_" + std::to_string(::getpid()) + "_" +
                std::to_string(seq++));
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::filesystem::path path;
};

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.02;
    return p;
}

std::string
statsJson(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats);
    return os.str();
}

std::string
runTiny(const std::string &spelling)
{
    const MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    auto workload = makeWorkload(spelling, tinyParams());
    Machine machine(cfg);
    return statsJson(machine.run(*workload));
}

/** A small, valid text trace in the sim/trace.hh grammar. */
const char *const kTextTrace = "vcoma-trace-v1\n"
                               "threads 2\n"
                               "# interleaved on purpose\n"
                               "0 R 0x1000 2\n"
                               "1 W 0x2000 3\n"
                               "0 B 1\n"
                               "1 B 1\n"
                               "0 L 7\n"
                               "0 U 7\n"
                               "1 R 4096 1\n";

} // namespace

// ---------------------------------------------------------------------
// Zipfian sampler.

TEST(Zipf, ThetaZeroIsUniform)
{
    ZipfGenerator zipf(8, 0.0);
    Rng rng(99);
    long bins[8] = {};
    const int draws = 16000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t r = zipf.next(rng);
        ASSERT_LT(r, 8u);
        ++bins[r];
    }
    const double expected = draws / 8.0;
    double chi2 = 0;
    for (long b : bins) {
        const double d = b - expected;
        chi2 += d * d / expected;
    }
    // p = 0.001 critical value for 7 degrees of freedom.
    EXPECT_LT(chi2, 24.32);
}

TEST(Zipf, HighThetaConcentratesOnTheHead)
{
    ZipfGenerator zipf(1000, 1.3);
    Rng rng(7);
    int head = 0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i) {
        if (zipf.next(rng) < 10)
            ++head;
    }
    // Under uniform sampling the top-10 share would be 1%; theta 1.3
    // pushes well past half.  (Analytically ~0.75 for n=1000.)
    EXPECT_GT(head, draws / 2);
}

TEST(Zipf, DeterministicGivenTheRngStream)
{
    ZipfGenerator zipf(64, 0.99);
    Rng a(5), b(5);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(zipf.next(a), zipf.next(b));
}

// ---------------------------------------------------------------------
// Kernels and the inline knob spelling.

TEST(DatacenterKernels, RunDeterministicallyAcrossInstances)
{
    for (const char *name : {"KVLOOKUP", "GRAPH", "STREAMJOIN"}) {
        EXPECT_EQ(runTiny(name), runTiny(name)) << name;
    }
}

TEST(DatacenterKernels, KnobsChangeTheRun)
{
    const std::string base = runTiny("KVLOOKUP");
    EXPECT_NE(runTiny("KVLOOKUP:skew=0"), base);
    EXPECT_NE(runTiny("KVLOOKUP:read=0.1"), base);
    EXPECT_NE(runTiny("GRAPH:ws=4"), runTiny("GRAPH"));
}

TEST(DatacenterKernels, KnobSpellingIsCaseInsensitive)
{
    EXPECT_EQ(runTiny("kvlookup:SKEW=1.2,Read=0.5"),
              runTiny("KVLOOKUP:skew=1.2,read=0.5"));
}

TEST(DatacenterKernels, ParametersNameTheKnobs)
{
    WorkloadParams p = tinyParams();
    p.skew = 1.25;
    p.readRatio = 0.5;
    auto kv = makeWorkload("KVLOOKUP", p);
    EXPECT_NE(kv->parameters().find("skew=1.25"), std::string::npos)
        << kv->parameters();
    EXPECT_NE(kv->parameters().find("read=0.50"), std::string::npos)
        << kv->parameters();
}

TEST(DatacenterKernels, MalformedKnobsAreFatal)
{
    const WorkloadParams p = tinyParams();
    EXPECT_THROW(makeWorkload("KVLOOKUP:bogus=1", p), FatalError);
    EXPECT_THROW(makeWorkload("KVLOOKUP:skew=abc", p), FatalError);
    EXPECT_THROW(makeWorkload("KVLOOKUP:read=1.5", p), FatalError);
    EXPECT_THROW(makeWorkload("KVLOOKUP:ws=0", p), FatalError);
    EXPECT_THROW(makeWorkload("KVLOOKUP:skew=-1", p), FatalError);
}

TEST(DatacenterKernels, ListedInWorkloadNames)
{
    const auto &names = workloadNames();
    for (const char *name : {"KVLOOKUP", "GRAPH", "STREAMJOIN"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), name),
                  names.end())
            << name;
    }
}

TEST(TraceSpelling, DetectionIsCaseInsensitiveButPreservesThePath)
{
    EXPECT_TRUE(isTraceSpelling("TRACE:/tmp/x.vctrace"));
    EXPECT_TRUE(isTraceSpelling("trace:/tmp/x.vctrace"));
    EXPECT_FALSE(isTraceSpelling("TRACE:"));
    EXPECT_FALSE(isTraceSpelling("TRACER:/x"));
    EXPECT_FALSE(isTraceSpelling("KVLOOKUP"));
}

// ---------------------------------------------------------------------
// Text <-> packed conversion (the vcoma_trace library layer).

TEST(TraceConvert, TextRoundTripsThroughPackedByteForByte)
{
    TempDir dir;
    const std::string packed = (dir.path / "t.vctrace").string();
    std::istringstream in(kTextTrace);
    EXPECT_EQ(convertTextTraceToPacked(in, packed, "WEB", "prov"), 7u);

    const PackedTraceSummary s = summarizePackedTrace(packed);
    EXPECT_EQ(s.threads, 2u);
    EXPECT_EQ(s.totalEvents, 7u);
    EXPECT_EQ(s.workloadName, "WEB");
    EXPECT_EQ(s.key, "prov");
    ASSERT_EQ(s.perThreadEvents.size(), 2u);
    EXPECT_EQ(s.perThreadEvents[0], 4u);
    EXPECT_EQ(s.perThreadEvents[1], 3u);

    // dump -> convert -> dump is a fixed point: the first dump
    // canonicalises the interleaving (tid order), after which the
    // text and packed forms carry identical information.
    std::ostringstream dump1;
    dumpPackedTraceAsText(packed, dump1);
    const std::string repacked = (dir.path / "t2.vctrace").string();
    std::istringstream in2(dump1.str());
    EXPECT_EQ(convertTextTraceToPacked(in2, repacked, "WEB", "prov"),
              7u);
    std::ostringstream dump2;
    dumpPackedTraceAsText(repacked, dump2);
    EXPECT_EQ(dump2.str(), dump1.str());
}

TEST(TraceConvert, MalformedTextIsFatal)
{
    TempDir dir;
    const std::string out = (dir.path / "bad.vctrace").string();
    {
        std::istringstream in("not-a-trace\n");
        EXPECT_THROW(convertTextTraceToPacked(in, out), FatalError);
    }
    {   // tid out of range.
        std::istringstream in("vcoma-trace-v1\nthreads 1\n3 R 0 1\n");
        EXPECT_THROW(convertTextTraceToPacked(in, out), FatalError);
    }
    EXPECT_FALSE(std::filesystem::exists(out))
        << "a failed conversion must not publish a file";
}

TEST(TraceConvert, ConvertedTraceReplaysInTheMachine)
{
    TempDir dir;
    const std::string packed = (dir.path / "m.vctrace").string();
    std::istringstream in(kTextTrace);
    convertTextTraceToPacked(in, packed);

    // tinyConfig has 4 nodes but the trace has 2 threads, so build a
    // 2-node machine around it.
    MachineConfig cfg = tinyConfig(Scheme::VCOMA);
    cfg.numNodes = 2;
    auto workload = makeWorkload("TRACE:" + packed, tinyParams());
    EXPECT_EQ(workload->numThreads(), 2u);
    Machine machine(cfg);
    const RunStats stats = machine.run(*workload);
    EXPECT_EQ(stats.workload, "TRACE");
    // cpu.refs counts memory references only; the fixture has three
    // (the barrier/lock events are sync, not refs).
    std::uint64_t refs = 0;
    for (const auto &cpu : stats.cpus)
        refs += cpu.refs;
    EXPECT_EQ(refs, 3u);
}

// ---------------------------------------------------------------------
// TRACE:<path> through the service, byte-identical to a direct run.

TEST(DatacenterService, TraceWorkloadRoundTripsThroughTheService)
{
    TempDir dir;
    // Record a KVLOOKUP run at service scale (32 nodes) so the trace
    // thread count matches the service config's node count.
    ExperimentConfig cfg;
    cfg.workload = "KVLOOKUP:skew=1.2,read=0.5";
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.02;
    const std::string trace = (dir.path / "kv.vctrace").string();
    std::string liveJson;
    {
        ::setenv("VCOMA_TRACE_DIR", dir.path.string().c_str(), 1);
        Runner runner("");
        liveJson = statsJson(runner.run(cfg));
        ::unsetenv("VCOMA_TRACE_DIR");
    }
    // The recorded trace sits under the config's key.
    const std::string recorded =
        (dir.path / (cfg.key() + ".vctrace")).string();
    ASSERT_TRUE(std::filesystem::exists(recorded));
    std::filesystem::rename(recorded, trace);

    ExperimentConfig traceCfg = cfg;
    traceCfg.workload = "TRACE:" + trace;

    // Direct.
    Runner direct("");
    const std::string directJson = statsJson(direct.run(traceCfg));
    EXPECT_EQ(directJson, liveJson)
        << "TRACE: replay diverged from the recorded live run";

    // Via the service.
    Runner serviceRunner("");
    ServiceConfig scfg;
    scfg.endpoint = "/tmp/vcoma_test_dc_" +
                    std::to_string(::getpid()) + ".sock";
    scfg.queueCapacity = 4;
    scfg.workers = 1;
    ServiceServer server(serviceRunner, scfg);
    server.start();
    {
        ServiceClient client(scfg.endpoint);
        ASSERT_TRUE(client.ping());
        const auto out = client.run(traceCfg);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_EQ(out.statsJson, directJson)
            << "service sheet differs from the direct run";
    }
    server.requestStop();
    server.waitUntilStopped();
}
