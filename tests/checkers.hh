/**
 * @file
 * Whole-machine coherence invariant checkers shared by the protocol
 * and integration tests. These assert, over every block the machine
 * has ever touched:
 *
 *  1. directory/AM agreement: node m holds a valid AM copy iff the
 *     directory copyset says so;
 *  2. single ownership: exactly one copy is MasterShared/Exclusive,
 *     it belongs to the directory's owner, and Exclusive implies it
 *     is the only copy;
 *  3. version currency: every valid copy carries the directory's
 *     current write version (no stale data is reachable);
 *  4. inclusion: every valid FLC/SLC block lies under a valid AM
 *     block of its node.
 */

#ifndef VCOMA_TESTS_CHECKERS_HH
#define VCOMA_TESTS_CHECKERS_HH

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace vcoma
{

inline VAddr
testAmKey(Machine &m, const PageInfo &page, VAddr blockVa)
{
    if (m.traits().amVirtual)
        return blockVa;
    return (page.frame << m.layout().pageBits()) |
           (blockVa & mask(m.layout().pageBits()));
}

inline void
checkCoherenceInvariants(Machine &m)
{
    const auto &layout = m.layout();
    const unsigned blockBytes = m.config().am.blockBytes;

    for (const auto &[vpn, dirPage] : m.directory().pages()) {
        const PageInfo *page = m.pageTable().find(vpn);
        ASSERT_NE(page, nullptr) << "directory page without PTE";
        const VAddr base = vpn << layout.pageBits();
        for (std::uint64_t i = 0; i < dirPage.size(); ++i) {
            const DirectoryEntry &e = dirPage.entry(i);
            const VAddr blockVa = base + i * blockBytes;
            if (!e.resident()) {
                EXPECT_EQ(e.copyset, 0u) << "copies without owner";
                continue;
            }
            const VAddr amKey = testAmKey(m, *page, blockVa);
            unsigned owners = 0;
            for (unsigned n = 0; n < m.numNodes(); ++n) {
                const AmLine *line = m.node(n).am.find(amKey);
                const bool inSet = e.holds(n);
                ASSERT_EQ(line != nullptr, inSet)
                    << "node " << n << " copy/copyset mismatch, va 0x"
                    << std::hex << blockVa;
                if (!line)
                    continue;
                ASSERT_EQ(line->version, e.version)
                    << "stale copy at node " << n;
                if (isOwnerState(line->state)) {
                    ++owners;
                    ASSERT_EQ(e.owner, n) << "owner mismatch";
                    ASSERT_EQ(line->state == AmState::Exclusive,
                              e.exclusive);
                    if (e.exclusive) {
                        ASSERT_EQ(e.copies(), 1u)
                            << "exclusive with sharers";
                    }
                } else {
                    ASSERT_NE(e.owner, n)
                        << "owner holds non-owned state";
                }
            }
            ASSERT_EQ(owners, 1u)
                << "blocks must have exactly one owner, va 0x"
                << std::hex << blockVa;
        }
    }
}

inline void
checkInclusion(Machine &m)
{
    for (unsigned n = 0; n < m.numNodes(); ++n) {
        Node &node = m.node(n);
        node.slc.forEachValid([&](VAddr addr, bool) {
            const AmLine *line = node.am.find(
                m.traits().amVirtual == m.traits().slcVirtual
                    ? addr
                    : (m.traits().amVirtual
                           ? m.pageTable().reverse(addr)
                           : m.pageTable().translate(addr)));
            ASSERT_NE(line, nullptr)
                << "SLC block without AM parent at node " << n;
        });
        node.flc.forEachValid([&](VAddr addr, bool dirty) {
            ASSERT_FALSE(dirty) << "write-through FLC is never dirty";
            const bool sameSpace =
                m.traits().flcVirtual == m.traits().slcVirtual;
            const VAddr slcAddr =
                sameSpace ? addr
                          : (m.traits().slcVirtual
                                 ? m.pageTable().reverse(addr)
                                 : m.pageTable().translate(addr));
            ASSERT_TRUE(node.slc.contains(slcAddr))
                << "FLC block without SLC parent at node " << n;
        });
    }
}

} // namespace vcoma

#endif // VCOMA_TESTS_CHECKERS_HH
