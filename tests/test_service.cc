/**
 * @file
 * Tests for the simulation service: wire protocol round-trips,
 * scheduler admission control / dedup fan-out / deadlines /
 * cancellation / drain, the server's request handling (with and
 * without a real socket), byte-exact round-trips against a direct
 * Runner::run, and the saturating Tick arithmetic the scheduler and
 * the network Resource share.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "net/network.hh"
#include "service/client.hh"
#include "service/scheduler.hh"
#include "service/server.hh"
#include "service/wire.hh"
#include "sim/run_stats_json.hh"

using namespace vcoma;

namespace
{

ExperimentConfig
tinyConfig(const char *workload = "UNIFORM")
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.scheme = Scheme::VCOMA;
    cfg.nodes = 32;
    cfg.scale = 0.05;
    return cfg;
}

/** A tiny config with a distinct seed (distinct cache key). */
ExperimentConfig
tinySeeded(std::uint64_t seed)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.seed = seed;
    return cfg;
}

/** A config heavy enough to hold a worker for a while. */
ExperimentConfig
slowConfig(std::uint64_t seed = 1)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.scale = 0.6;
    cfg.seed = seed;
    return cfg;
}

std::string
configJson(const ExperimentConfig &cfg)
{
    std::ostringstream os;
    writeConfigJson(os, cfg);
    return os.str();
}

std::string
sheetOf(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Saturating Tick math (overflow guards for Resource/deadlines).

TEST(SaturatingMath, AddSaturatesInsteadOfWrapping)
{
    constexpr std::uint64_t top =
        std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(saturatingAdd(1, 2), 3u);
    EXPECT_EQ(saturatingAdd(top, 0), top);
    EXPECT_EQ(saturatingAdd(top, 1), top);
    EXPECT_EQ(saturatingAdd(top - 5, 10), top);
    EXPECT_EQ(saturatingAdd(top / 2, top / 2 + 1), top);
    EXPECT_EQ(saturatingAdd(0, top), top);
}

TEST(SaturatingMath, ResourceAcquireNeverWrapsFreeTime)
{
    constexpr Tick top = std::numeric_limits<Tick>::max();
    Resource r;
    // A malformed huge reservation pins the resource at "never free"
    // instead of wrapping into the past and granting free slots.
    EXPECT_EQ(r.acquire(top - 10, 100), top - 10);
    EXPECT_EQ(r.freeAt(), top);
    // Later acquires queue behind the saturated time, monotonic.
    EXPECT_EQ(r.acquire(0, 5), top);
    EXPECT_EQ(r.freeAt(), top);
    r.reset();
    EXPECT_EQ(r.acquire(10, 5), 10u);
    EXPECT_EQ(r.freeAt(), 15u);
}

// ---------------------------------------------------------------------
// Wire protocol.

TEST(Wire, ConfigRoundTripsEveryField)
{
    ExperimentConfig cfg;
    cfg.workload = "RAYTRACE";
    cfg.scheme = Scheme::L2;
    cfg.tlbEntries = 64;
    cfg.tlbAssoc = 2;
    cfg.timedTranslation = true;
    cfg.writebacksAccessTlb = false;
    cfg.raytraceV2 = true;
    cfg.nodes = 16;
    cfg.scale = 0.3;
    cfg.seed = 99;
    cfg.amAssoc = 8;
    cfg.xlatPenalty = 75;
    cfg.injectFault = "stale-translation";

    const ExperimentConfig back =
        configFromJson(JsonValue::parse(configJson(cfg)));
    EXPECT_EQ(back.key(), cfg.key());
    EXPECT_EQ(back.workload, cfg.workload);
    EXPECT_EQ(back.scheme, cfg.scheme);
    EXPECT_EQ(back.writebacksAccessTlb, cfg.writebacksAccessTlb);
    EXPECT_EQ(back.injectFault, cfg.injectFault);
}

TEST(Wire, ScaleSurvivesRoundTripBitForBit)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.scale = 0.1;  // not representable exactly in binary
    const ExperimentConfig back =
        configFromJson(JsonValue::parse(configJson(cfg)));
    EXPECT_EQ(back.scale, cfg.scale);
    EXPECT_EQ(back.key(), cfg.key());
}

TEST(Wire, UnknownConfigFieldRejected)
{
    EXPECT_THROW(
        configFromJson(JsonValue::parse("{\"workloa\":\"FFT\"}")),
        WireError);
    EXPECT_THROW(configFromJson(JsonValue::parse("[1,2]")), WireError);
    EXPECT_THROW(
        configFromJson(JsonValue::parse("{\"scale\":-1}")), WireError);
    EXPECT_THROW(
        configFromJson(JsonValue::parse("{\"nodes\":\"four\"}")),
        WireError);
}

TEST(Wire, SchemeTokensBothSpellingsParse)
{
    EXPECT_EQ(parseSchemeToken("L0"), Scheme::L0);
    EXPECT_EQ(parseSchemeToken("L2-TLB"), Scheme::L2);
    EXPECT_EQ(parseSchemeToken("VCOMA"), Scheme::VCOMA);
    EXPECT_EQ(parseSchemeToken("V-COMA"), Scheme::VCOMA);
    EXPECT_THROW(parseSchemeToken("L9"), WireError);
}

// ---------------------------------------------------------------------
// Scheduler.

TEST(Scheduler, RunsAJobAndReportsCacheHits)
{
    Runner runner("");
    Scheduler sched(runner, 8, 2);

    const JobRequest req{tinyConfig(), 0, 0};
    auto sub = sched.submit(req);
    ASSERT_TRUE(sub.accepted());
    const JobResult r = sub.future.get();
    ASSERT_EQ(r.status, JobStatus::Done);
    ASSERT_NE(r.stats, nullptr);
    EXPECT_FALSE(r.cached);

    // Same config again: the runner memo serves it, cached == true.
    auto again = sched.submit(req);
    ASSERT_TRUE(again.accepted());
    const JobResult r2 = again.future.get();
    ASSERT_EQ(r2.status, JobStatus::Done);
    EXPECT_TRUE(r2.cached);
    EXPECT_EQ(r2.stats, r.stats);

    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.served, 2u);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.latencyMs.count, 2u);
    EXPECT_LE(s.latencyP50Ms, s.latencyP90Ms);
    EXPECT_LE(s.latencyP90Ms, s.latencyP99Ms);
}

TEST(Scheduler, ZeroCapacityShedsEverySubmitExplicitly)
{
    Runner runner("");
    Scheduler sched(runner, 0, 1);
    auto sub = sched.submit({tinyConfig(), 0, 0});
    EXPECT_FALSE(sub.accepted());
    EXPECT_NE(sub.rejection.find("queue full"), std::string::npos)
        << sub.rejection;
    EXPECT_EQ(sched.stats().shedQueueFull, 1u);
}

TEST(Scheduler, DedupFansOneRunOutToEveryWaiter)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);

    // Park the single worker on a slow job so the duplicates join the
    // queued job rather than racing it into the memo.
    auto slow = sched.submit({slowConfig(7), 0, 0});
    ASSERT_TRUE(slow.accepted());

    const JobRequest dup{tinyConfig("STRIDE"), 0, 0};
    auto first = sched.submit(dup);
    ASSERT_TRUE(first.accepted());
    EXPECT_FALSE(first.deduplicated);

    std::vector<Scheduler::Submission> joiners;
    for (int i = 0; i < 4; ++i) {
        joiners.push_back(sched.submit(dup));
        ASSERT_TRUE(joiners.back().accepted());
        EXPECT_TRUE(joiners.back().deduplicated) << i;
    }

    const JobResult base = first.future.get();
    ASSERT_EQ(base.status, JobStatus::Done);
    for (auto &j : joiners) {
        const JobResult r = j.future.get();
        ASSERT_EQ(r.status, JobStatus::Done);
        EXPECT_EQ(r.stats, base.stats);  // the same run, fanned out
    }
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.dedupJoins, 4u);
    // One simulation for the five waiters (plus the slow pacer).
    EXPECT_EQ(s.executed, 2u);
    (void)slow.future.get();
}

TEST(Scheduler, QueuedJobCanBeCancelled)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);
    auto slow = sched.submit({slowConfig(8), 0, 0});
    ASSERT_TRUE(slow.accepted());

    const JobRequest victim{tinySeeded(3), 0, 0};
    auto queued = sched.submit(victim);
    ASSERT_TRUE(queued.accepted());
    EXPECT_EQ(sched.cancel(victim.config.key()), 1u);
    const JobResult r = queued.future.get();
    EXPECT_EQ(r.status, JobStatus::Cancelled);
    EXPECT_EQ(sched.stats().cancelled, 1u);
    (void)slow.future.get();
}

TEST(Scheduler, ExpiredDeadlineShedsHugeDeadlineDoesNot)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);
    auto slow = sched.submit({slowConfig(9), 0, 0});
    ASSERT_TRUE(slow.accepted());

    // 1 ms deadline: long gone by the time the worker frees up.
    auto expired = sched.submit({tinyConfig("STRIDE"), 0, 1});
    // Saturating deadline: submitMs + max must pin at "never", not
    // wrap into the past and shed a healthy job.
    auto forever = sched.submit(
        {tinySeeded(4), 0,
         std::numeric_limits<std::uint64_t>::max()});
    ASSERT_TRUE(expired.accepted());
    ASSERT_TRUE(forever.accepted());

    const JobResult r1 = expired.future.get();
    EXPECT_EQ(r1.status, JobStatus::Shed);
    EXPECT_NE(r1.error.find("deadline"), std::string::npos) << r1.error;
    const JobResult r2 = forever.future.get();
    EXPECT_EQ(r2.status, JobStatus::Done);
    EXPECT_EQ(sched.stats().shedDeadline, 1u);
    (void)slow.future.get();
}

TEST(Scheduler, PriorityOrdersQueuedJobs)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);
    auto slow = sched.submit({slowConfig(10), 0, 0});
    ASSERT_TRUE(slow.accepted());

    // Queued behind the pacer: a low-priority job first, then a
    // high-priority one. The high one must run first, so when its
    // result lands the low one must still be pending (it takes long
    // enough for the check to be robust).
    ExperimentConfig lowCfg = tinyConfig("STRIDE");
    lowCfg.scale = 0.3;
    auto low = sched.submit({lowCfg, 0, 0});
    auto high = sched.submit({tinySeeded(5), 5, 0});
    ASSERT_TRUE(low.accepted());
    ASSERT_TRUE(high.accepted());

    high.future.wait();
    EXPECT_NE(low.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(high.future.get().status, JobStatus::Done);
    EXPECT_EQ(low.future.get().status, JobStatus::Done);
    (void)slow.future.get();
}

TEST(Scheduler, DrainFinishesQueuedJobsAndRejectsNewOnes)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);
    auto a = sched.submit({tinyConfig(), 0, 0});
    auto b = sched.submit({tinyConfig("STRIDE"), 0, 0});
    ASSERT_TRUE(a.accepted());
    ASSERT_TRUE(b.accepted());
    sched.drain();
    EXPECT_EQ(a.future.get().status, JobStatus::Done);
    EXPECT_EQ(b.future.get().status, JobStatus::Done);
    auto late = sched.submit({tinySeeded(6), 0, 0});
    EXPECT_FALSE(late.accepted());
    EXPECT_NE(late.rejection.find("drain"), std::string::npos);
}

// ---------------------------------------------------------------------
// Failure semantics under the service (poisoned configs).

TEST(ServiceFailures, RunAllMixedPoisonedBatchKeepsOrderAndRecords)
{
    // A batch mixing a FaultInjector-poisoned config with healthy
    // ones: results in submission order, the poisoned slot nullptr,
    // the FailedRun recorded, everything else served.
    std::vector<ExperimentConfig> cfgs;
    cfgs.push_back(tinyConfig("UNIFORM"));
    ExperimentConfig bad = tinyConfig("STRIDE");
    bad.injectFault = "corrupt-am-state";
    cfgs.push_back(bad);
    cfgs.push_back(tinySeeded(7));

    Runner runner("");
    const auto results = runner.runAll(cfgs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_NE(results[0], nullptr);
    EXPECT_EQ(results[1], nullptr);
    EXPECT_NE(results[2], nullptr);

    const auto failures = runner.failures();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].key, bad.key());
    EXPECT_NE(failures[0].error.find("corrupt-am-state"),
              std::string::npos)
        << failures[0].error;
}

TEST(ServiceFailures, UnknownFaultClassFailsTheJobNotTheService)
{
    Runner runner("");
    Scheduler sched(runner, 8, 1);
    ExperimentConfig bad = tinyConfig();
    bad.injectFault = "no-such-class";
    auto sub = sched.submit({bad, 0, 0});
    ASSERT_TRUE(sub.accepted());
    const JobResult r = sub.future.get();
    EXPECT_EQ(r.status, JobStatus::Failed);
    EXPECT_NE(r.error.find("no-such-class"), std::string::npos)
        << r.error;

    // The scheduler keeps serving after a failure.
    auto ok = sched.submit({tinyConfig("STRIDE"), 0, 0});
    ASSERT_TRUE(ok.accepted());
    EXPECT_EQ(ok.future.get().status, JobStatus::Done);
}

// ---------------------------------------------------------------------
// Server request handling (protocol level, no socket).

TEST(ServiceServer, HandlesProtocolErrorsExplicitly)
{
    Runner runner("");
    ServiceConfig cfg;
    cfg.queueCapacity = 4;
    cfg.workers = 1;
    ServiceServer server(runner, cfg);  // never start()ed: no socket

    auto expectError = [&](const std::string &req,
                           const std::string &needle) {
        const JsonValue v =
            JsonValue::parse(server.handleRequestLine(req));
        EXPECT_FALSE(v.at("ok").asBool()) << req;
        EXPECT_NE(v.at("error").asString().find(needle),
                  std::string::npos)
            << req << " -> " << v.at("error").asString();
    };
    expectError("not json", "bad request JSON");
    expectError("[1]", "object");
    expectError("{\"op\":\"warp\"}", "unknown op");
    expectError("{\"op\":\"run\"}", "config");
    expectError("{\"op\":\"run\",\"config\":{\"bogus\":1}}",
                "unknown config field");
    expectError("{\"op\":\"cancel\"}", "key");

    const JsonValue pong =
        JsonValue::parse(server.handleRequestLine("{\"op\":\"ping\"}"));
    EXPECT_TRUE(pong.at("ok").asBool());
    EXPECT_TRUE(pong.at("pong").asBool());
}

TEST(ServiceServer, BatchRepliesInSubmissionOrderPastFailures)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.queueCapacity = 8;
    scfg.workers = 2;
    ServiceServer server(runner, scfg);

    ExperimentConfig bad = tinyConfig("STRIDE");
    bad.injectFault = "corrupt-am-state";
    std::ostringstream req;
    req << "{\"op\":\"batch\",\"configs\":["
        << configJson(tinyConfig("UNIFORM")) << ","
        << configJson(bad) << ","
        << configJson(tinySeeded(8)) << "]}";
    const JsonValue v =
        JsonValue::parse(server.handleRequestLine(req.str()));
    ASSERT_TRUE(v.at("ok").asBool());
    const JsonValue &results = v.at("results");
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results.at(std::size_t{0}).at("ok").asBool());
    EXPECT_FALSE(results.at(std::size_t{1}).at("ok").asBool());
    EXPECT_TRUE(results.at(std::size_t{2}).at("ok").asBool());
    EXPECT_NE(results.at(std::size_t{1})
                  .at("error")
                  .asString()
                  .find("corrupt-am-state"),
              std::string::npos);

    // The daemon still serves the next request after the failure.
    const JsonValue again = JsonValue::parse(server.handleRequestLine(
        "{\"op\":\"run\",\"config\":" + configJson(tinyConfig()) +
        "}"));
    EXPECT_TRUE(again.at("ok").asBool());
}

// ---------------------------------------------------------------------
// End to end over a real Unix-domain socket.

namespace
{

/** Short socket path (sun_path is ~108 bytes; build dirs run long). */
std::string
shortSocketPath(const char *tag)
{
    return "/tmp/vcoma_test_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

} // namespace

TEST(ServiceSocket, RoundTripIsByteExactAndCacheWarm)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.endpoint = shortSocketPath("rt");
    scfg.queueCapacity = 8;
    scfg.workers = 2;
    ServiceServer server(runner, scfg);
    server.start();

    const ExperimentConfig cfg = tinyConfig();
    std::string viaService;
    {
        ServiceClient client(scfg.endpoint);
        ASSERT_TRUE(client.ping());
        const auto out = client.run(cfg);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_FALSE(out.cached);
        viaService = out.statsJson;
    }

    // Byte-exact against a direct Runner::run of the same config.
    Runner direct("");
    EXPECT_EQ(viaService, sheetOf(direct.run(cfg)));

    // Second submission: served from the warm memo, byte-identical.
    {
        ServiceClient client(scfg.endpoint);
        const auto out = client.run(cfg);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_TRUE(out.cached);
        EXPECT_EQ(out.statsJson, viaService);

        const JsonValue stats =
            JsonValue::parse(client.statsLine());
        ASSERT_TRUE(stats.at("ok").asBool());
        const JsonValue &s = stats.at("serviceStats");
        EXPECT_EQ(s.at("cacheHits").asUint(), 1u);
        EXPECT_EQ(s.at("jobsServed").asUint(), 2u);
        EXPECT_EQ(s.at("simulationsExecuted").asUint(), 1u);
    }
    server.requestStop();
    server.waitUntilStopped();
    EXPECT_FALSE(std::filesystem::exists(scfg.endpoint));
}

TEST(ServiceSocket, CapacityOneFourConcurrentClientsShedExplicitly)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.endpoint = shortSocketPath("shed");
    scfg.queueCapacity = 1;
    scfg.workers = 1;
    ServiceServer server(runner, scfg);
    server.start();

    // Four concurrent clients, distinct slow configs, capacity 1:
    // every client must get an explicit reply — ok or a shed with
    // backpressure text — and nothing may hang or crash.
    std::atomic<int> oks{0}, sheds{0}, others{0};
    std::vector<std::thread> clients;
    for (std::uint64_t i = 0; i < 4; ++i) {
        clients.emplace_back([&, i] {
            ServiceClient client(scfg.endpoint);
            const auto out = client.run(slowConfig(100 + i));
            if (out.ok)
                ++oks;
            else if (out.shed)
                ++sheds;
            else
                ++others;
        });
    }
    for (auto &t : clients)
        t.join();

    EXPECT_EQ(oks + sheds, 4);
    EXPECT_EQ(others, 0);
    EXPECT_GE(oks.load(), 1);
    const JsonValue stats = JsonValue::parse(
        [&] {
            ServiceClient c(scfg.endpoint);
            return c.statsLine();
        }());
    const JsonValue &s = stats.at("serviceStats");
    EXPECT_EQ(s.at("jobsServed").asUint() +
                  s.at("jobsShed").asUint(),
              4u);
    server.requestStop();
    server.waitUntilStopped();
}

TEST(ServiceSocket, ShutdownOpDrainsTheDaemon)
{
    Runner runner("");
    ServiceConfig scfg;
    scfg.endpoint = shortSocketPath("down");
    scfg.queueCapacity = 4;
    scfg.workers = 1;
    ServiceServer server(runner, scfg);
    server.start();
    {
        ServiceClient client(scfg.endpoint);
        EXPECT_TRUE(client.shutdown());
    }
    server.waitUntilStopped();
    EXPECT_TRUE(server.stopped());
}
