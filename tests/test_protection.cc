/** @file Tests for page-level protection management (Section 4.3). */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "translation/system_builder.hh"

using namespace vcoma;

namespace
{

MachineConfig
cfg()
{
    return tinyConfig(Scheme::VCOMA);
}

} // namespace

TEST(Protection, ChangePropagatesToHoldersAndCompletes)
{
    Machine m(cfg());
    const VAddr va = 0x60000;
    // Three nodes hold copies of the page's first block.
    m.access(0, RefType::Read, va, 0);
    m.access(1, RefType::Read, va, 1000);
    m.access(2, RefType::Read, va, 2000);

    const PageNum vpn = m.layout().vpn(va);
    const Tick done =
        m.protection().changeProtection(3, vpn, ProtRead, 10000);
    EXPECT_GT(done, 10000u);
    EXPECT_GE(m.protection().updatesSent.value(), 2u);
    EXPECT_EQ(m.protection().changes.value(), 1u);
    EXPECT_EQ(m.pageTable().find(vpn)->protection, ProtRead);
}

TEST(Protection, WriteFaultsAfterRevocation)
{
    Machine m(cfg());
    const VAddr va = 0x61000;
    m.access(0, RefType::Write, va, 0);
    m.protection().changeProtection(0, m.layout().vpn(va), ProtRead,
                                    1000);
    EXPECT_THROW(m.access(1, RefType::Write, va, 2000),
                 ProtectionFault);
    EXPECT_NO_THROW(m.access(1, RefType::Read, va, 3000));
}

TEST(Protection, RestoringWriteAccessWorks)
{
    Machine m(cfg());
    const VAddr va = 0x62000;
    m.access(0, RefType::Read, va, 0);
    const PageNum vpn = m.layout().vpn(va);
    m.protection().changeProtection(0, vpn, ProtRead, 1000);
    EXPECT_THROW(m.access(0, RefType::Write, va, 2000),
                 ProtectionFault);
    m.protection().changeProtection(0, vpn, ProtRW, 3000);
    EXPECT_NO_THROW(m.access(0, RefType::Write, va, 4000));
}

TEST(Protection, UnmappedPageIsAnError)
{
    Machine m(cfg());
    EXPECT_THROW(m.protection().changeProtection(0, 0xDEAD, ProtRead, 0),
                 FatalError);
}

TEST(Protection, ReferenceAndModifyBits)
{
    Machine m(cfg());
    const VAddr va = 0x63000;
    m.access(0, RefType::Read, va, 0);
    const PageNum vpn = m.layout().vpn(va);
    const PageInfo *page = m.pageTable().find(vpn);
    EXPECT_TRUE(page->referenced);
    EXPECT_FALSE(page->modified);
    // In V-COMA the modify bit is set at the home when exclusive
    // ownership is first requested (Section 4.3).
    m.access(1, RefType::Write, va, 1000);
    EXPECT_TRUE(page->modified);
    EXPECT_GT(m.node(page->home).dlb->modBitSets.value(), 0u);
}
