/** @file Tests for the worker pool behind Runner::runAll. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace vcoma;

namespace
{

/** Scoped setenv/unsetenv that restores the previous value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            wasSet_ = false;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (wasSet_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

} // namespace

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    std::vector<std::future<void>> done;
    for (int i = 0; i < 100; ++i)
        done.push_back(pool.submit([&count] { ++count; }));
    for (auto &f : done)
        f.get();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DeliversResultsThroughFutures)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] { return 7; });
    EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultThreadsHonoursVcomaJobs)
{
    {
        EnvGuard env("VCOMA_JOBS", "3");
        EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    }
    const unsigned hw =
        std::max(std::thread::hardware_concurrency(), 1u);
    {
        EnvGuard env("VCOMA_JOBS", nullptr);
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
    {
        // 0 means "auto": one worker per hardware thread.
        EnvGuard env("VCOMA_JOBS", "0");
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
    {
        // Garbage warns and falls back to the hardware count.
        EnvGuard env("VCOMA_JOBS", "many");
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
    {
        // Negative counts must not wrap through strtoul into a huge
        // worker count; they fall back like any other garbage.
        EnvGuard env("VCOMA_JOBS", "-2");
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
    {
        EnvGuard env("VCOMA_JOBS", " -16");
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
    {
        // Trailing garbage after a number is rejected too.
        EnvGuard env("VCOMA_JOBS", "4x");
        EXPECT_EQ(ThreadPool::defaultThreads(), hw);
    }
}

TEST(ThreadPool, ConcurrentSubmitters)
{
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &sum] {
            std::vector<std::future<void>> done;
            for (int i = 1; i <= 100; ++i)
                done.push_back(pool.submit([&sum, i] { sum += i; }));
            for (auto &f : done)
                f.get();
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(sum.load(), 4 * 5050);
}
