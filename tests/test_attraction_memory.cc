/** @file Tests for the attraction-memory structure. */

#include <gtest/gtest.h>

#include "coma/attraction_memory.hh"

using namespace vcoma;

namespace
{

CacheConfig
smallAm()
{
    // 8 KB, 2-way, 128 B blocks: 32 sets. Same-set stride = 4096.
    return CacheConfig{8192, 2, 128, false, true};
}

} // namespace

TEST(AttractionMemory, InstallAndFind)
{
    AttractionMemory am("am", smallAm());
    const auto v = am.chooseVictim(0x1000);
    EXPECT_EQ(v.kind, VictimKind::Empty);
    am.installAt(v.lineIndex, 0x1000, AmState::MasterShared, 7);
    const AmLine *line = am.find(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, AmState::MasterShared);
    EXPECT_EQ(line->version, 7u);
    EXPECT_EQ(am.state(0x1080), AmState::Invalid);  // other block
    // Sub-block addresses resolve to the same line.
    EXPECT_EQ(am.find(0x107F), line);
}

TEST(AttractionMemory, VictimPreferenceInvalidSharedOwned)
{
    AttractionMemory am("am", smallAm());
    // Fill one way with Shared, leave the other Invalid.
    auto v1 = am.chooseVictim(0x0);
    am.installAt(v1.lineIndex, 0x0, AmState::Shared, 0);
    auto v2 = am.chooseVictim(0x1000);  // same set (stride 4096)
    EXPECT_EQ(v2.kind, VictimKind::Empty);
    am.installAt(v2.lineIndex, 0x1000, AmState::Exclusive, 0);
    // Set is full now: Shared preferred over Owned.
    auto v3 = am.chooseVictim(0x2000);
    EXPECT_EQ(v3.kind, VictimKind::Shared);
    EXPECT_EQ(am.line(v3.lineIndex).key, 0x0u);
}

TEST(AttractionMemory, OwnedVictimWhenAllOwned)
{
    AttractionMemory am("am", smallAm());
    auto v1 = am.chooseVictim(0x0);
    am.installAt(v1.lineIndex, 0x0, AmState::Exclusive, 0);
    auto v2 = am.chooseVictim(0x1000);
    am.installAt(v2.lineIndex, 0x1000, AmState::MasterShared, 0);
    am.touch(0x0);  // refresh 0x0: 0x1000 becomes the LRU owned block
    auto v3 = am.chooseVictim(0x2000);
    EXPECT_EQ(v3.kind, VictimKind::Owned);
    EXPECT_EQ(am.line(v3.lineIndex).key, 0x1000u);
}

TEST(AttractionMemory, InjectionVictimNeverOwned)
{
    AttractionMemory am("am", smallAm());
    auto v1 = am.chooseVictim(0x0);
    am.installAt(v1.lineIndex, 0x0, AmState::Exclusive, 0);
    auto v2 = am.chooseVictim(0x1000);
    am.installAt(v2.lineIndex, 0x1000, AmState::Exclusive, 0);
    VictimChoice out;
    EXPECT_FALSE(am.chooseInjectionVictim(0x2000, out));
    // Replace one with Shared: injection may now take it.
    am.invalidate(0x1000);
    auto v3 = am.chooseVictim(0x1000);
    am.installAt(v3.lineIndex, 0x1000, AmState::Shared, 0);
    EXPECT_TRUE(am.chooseInjectionVictim(0x2000, out));
    EXPECT_EQ(out.kind, VictimKind::Shared);
}

TEST(AttractionMemory, InvalidateReturnsPriorState)
{
    AttractionMemory am("am", smallAm());
    auto v = am.chooseVictim(0x3000);
    am.installAt(v.lineIndex, 0x3000, AmState::Exclusive, 0);
    EXPECT_EQ(am.invalidate(0x3000), AmState::Exclusive);
    EXPECT_EQ(am.invalidate(0x3000), AmState::Invalid);
    EXPECT_EQ(am.state(0x3000), AmState::Invalid);
}

TEST(AttractionMemory, ValidLinesCount)
{
    AttractionMemory am("am", smallAm());
    EXPECT_EQ(am.validLines(), 0u);
    auto v = am.chooseVictim(0x0);
    am.installAt(v.lineIndex, 0x0, AmState::Shared, 0);
    EXPECT_EQ(am.validLines(), 1u);
    am.invalidate(0x0);
    EXPECT_EQ(am.validLines(), 0u);
}

TEST(AttractionMemory, InstallIntoOccupiedFramePanics)
{
    AttractionMemory am("am", smallAm());
    auto v = am.chooseVictim(0x0);
    am.installAt(v.lineIndex, 0x0, AmState::Shared, 0);
    EXPECT_THROW(am.installAt(v.lineIndex, 0x1000, AmState::Shared, 0),
                 PanicError);
}

TEST(AttractionMemory, StateNames)
{
    EXPECT_STREQ(amStateName(AmState::Invalid), "I");
    EXPECT_STREQ(amStateName(AmState::Shared), "S");
    EXPECT_STREQ(amStateName(AmState::MasterShared), "MS");
    EXPECT_STREQ(amStateName(AmState::Exclusive), "E");
    EXPECT_FALSE(isOwnerState(AmState::Shared));
    EXPECT_TRUE(isOwnerState(AmState::MasterShared));
    EXPECT_TRUE(isOwnerState(AmState::Exclusive));
}
