/**
 * @file
 * Integration tests: whole-machine runs of small workloads, the
 * accounting identity (busy + sync + stalls == finish time), run
 * determinism, and cross-scheme consistency of the reference stream.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "checkers.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.threads = 4;
    p.scale = 0.05;
    p.seed = 3;
    return p;
}

MachineConfig
cfgFor(Scheme scheme)
{
    MachineConfig cfg = tinyConfig(scheme);
    cfg.checkLevel = 2;
    return cfg;
}

} // namespace

class MachineRun : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(MachineRun, UniformWorkloadCompletes)
{
    Machine m(cfgFor(GetParam()));
    auto w = makeWorkload("UNIFORM", tinyParams());
    const RunStats stats = m.run(*w);
    EXPECT_GT(stats.totalRefs(), 0u);
    EXPECT_GT(stats.execTime, 0u);
    EXPECT_EQ(stats.cpus.size(), 4u);
    checkCoherenceInvariants(m);
    checkInclusion(m);
}

TEST_P(MachineRun, AccountingIdentityHolds)
{
    Machine m(cfgFor(GetParam()));
    auto w = makeWorkload("STRIDE", tinyParams());
    const RunStats stats = m.run(*w);
    for (const auto &cpu : stats.cpus) {
        EXPECT_EQ(cpu.accounted(), cpu.finish)
            << "busy+sync+stalls must equal the finish time";
    }
}

TEST_P(MachineRun, DeterministicAcrossRuns)
{
    RunStats a, b;
    {
        Machine m(cfgFor(GetParam()));
        auto w = makeWorkload("UNIFORM", tinyParams());
        a = m.run(*w);
    }
    {
        Machine m(cfgFor(GetParam()));
        auto w = makeWorkload("UNIFORM", tinyParams());
        b = m.run(*w);
    }
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.totalRefs(), b.totalRefs());
    EXPECT_EQ(a.remoteReads, b.remoteReads);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    ASSERT_EQ(a.shadow.size(), b.shadow.size());
    for (std::size_t i = 0; i < a.shadow.size(); ++i)
        EXPECT_EQ(a.shadow[i].demandMisses, b.shadow[i].demandMisses);
}

TEST_P(MachineRun, ShadowSweepIsMonotoneFullyAssociative)
{
    Machine m(cfgFor(GetParam()));
    auto w = makeWorkload("STRIDE", tinyParams());
    const RunStats stats = m.run(*w);
    std::uint64_t prev = ~std::uint64_t{0};
    for (unsigned size : shadowSizes()) {
        const auto &p = stats.shadowPoint(size, 0);
        EXPECT_LE(p.demandMisses, prev) << "size " << size;
        prev = p.demandMisses;
    }
}

TEST_P(MachineRun, RejectsThreadCountMismatch)
{
    Machine m(cfgFor(GetParam()));
    WorkloadParams p = tinyParams();
    p.threads = 2;
    auto w = makeWorkload("UNIFORM", p);
    EXPECT_THROW(m.run(*w), FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MachineRun,
    ::testing::Values(Scheme::L0, Scheme::L1, Scheme::L2, Scheme::L3,
                      Scheme::VCOMA),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name = schemeName(info.param);
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        return name;
    });

// ---------------------------------------------------------------------
// Cross-scheme properties.
// ---------------------------------------------------------------------

/** The reference stream is placement-independent for phased kernels. */
TEST(MachineCross, SameRefCountAcrossSchemes)
{
    std::uint64_t refs = 0;
    for (Scheme s : {Scheme::L0, Scheme::L2, Scheme::VCOMA}) {
        Machine m(cfgFor(s));
        auto w = makeWorkload("STRIDE", tinyParams());
        const RunStats stats = m.run(*w);
        if (refs == 0)
            refs = stats.totalRefs();
        else
            EXPECT_EQ(stats.totalRefs(), refs)
                << schemeName(s);
    }
}

/** The paper's filtering effect: deeper TLB points see fewer accesses. */
TEST(MachineCross, FilteringEffectOnAccessCounts)
{
    std::map<Scheme, std::uint64_t> accesses;
    for (Scheme s :
         {Scheme::L0, Scheme::L1, Scheme::L2, Scheme::L3}) {
        Machine m(cfgFor(s));
        auto w = makeWorkload("UNIFORM", tinyParams());
        const RunStats stats = m.run(*w);
        accesses[s] = stats.shadowPoint(8, 0).demandAccesses;
    }
    EXPECT_GE(accesses[Scheme::L0], accesses[Scheme::L1]);
    EXPECT_GE(accesses[Scheme::L1], accesses[Scheme::L2]);
    EXPECT_GE(accesses[Scheme::L2], accesses[Scheme::L3]);
}

/** Timed translation penalties only appear when enabled. */
TEST(MachineCross, TimedTranslationTogglesXlatStall)
{
    MachineConfig cfg = cfgFor(Scheme::L0);
    cfg.translation.entries = 2;  // tiny: plenty of misses
    cfg.timedTranslation = false;
    {
        Machine m(cfg);
        auto w = makeWorkload("UNIFORM", tinyParams());
        const RunStats stats = m.run(*w);
        EXPECT_EQ(stats.totalXlatStall(), 0u);
        EXPECT_GT(stats.tlbMisses, 0u);
    }
    cfg.timedTranslation = true;
    {
        Machine m(cfg);
        auto w = makeWorkload("UNIFORM", tinyParams());
        const RunStats stats = m.run(*w);
        EXPECT_GT(stats.totalXlatStall(), 0u);
        EXPECT_EQ(stats.totalXlatStall(),
                  stats.tlbMisses * cfg.timing.translationMiss);
    }
}

namespace
{

/** Four threads hammering one lock-protected counter. */
class LockPingWorkload : public Workload
{
  public:
    LockPingWorkload() : counter_(space_, "counter", 8) {}

    std::string name() const override { return "LOCKPING"; }
    std::string parameters() const override { return ""; }
    unsigned numThreads() const override { return 4; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef>
    thread(unsigned) override
    {
        return body();
    }

  private:
    Generator<MemRef>
    body()
    {
        for (int i = 0; i < 50; ++i) {
            co_yield MemRef::lock(1);
            co_yield MemRef::read(counter_.addr(0), 2);
            co_yield MemRef::write(counter_.addr(0), 2);
            co_yield MemRef::unlock(1);
        }
        co_yield MemRef::barrier(0);
    }

    AddressSpace space_;
    SharedArray<std::uint64_t> counter_;
};

} // namespace

/** Locks serialise: sync time appears under contention, and the
 *  lock-protected block migrates between all nodes. */
TEST(MachineCross, LockContentionShowsAsSync)
{
    Machine m(cfgFor(Scheme::VCOMA));
    LockPingWorkload w;
    const RunStats stats = m.run(w);
    EXPECT_GT(stats.totalSync(), 0u);
    EXPECT_GE(stats.upgrades + stats.remoteWrites, 100u);
    checkCoherenceInvariants(m);
}
