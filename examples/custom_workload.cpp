/**
 * @file
 * Example: writing a custom workload against the public API.
 *
 * Workload threads are ordinary C++ coroutines that yield MemRef
 * events; the simulator handles placement, coherence, translation and
 * timing. This example builds a producer/consumer pipeline, runs it
 * under every translation scheme, and then demonstrates the page-
 * protection machinery of Section 4.3 by revoking write access to
 * the ring buffer mid-run... after the run, using the direct access
 * API.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

/**
 * A software pipeline: each thread produces items into a ring buffer
 * consumed by its right neighbour (migratory sharing), with a lock
 * per ring and a barrier per round.
 */
class PipelineWorkload : public Workload
{
  public:
    PipelineWorkload(unsigned threads, unsigned rounds,
                     unsigned itemsPerRound)
        : threads_(threads), rounds_(rounds), items_(itemsPerRound)
    {
        rings_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            rings_.emplace_back(space_,
                                "pipeline.ring" + std::to_string(t),
                                std::uint64_t{1024});
        }
    }

    std::string name() const override { return "PIPELINE"; }

    std::string
    parameters() const override
    {
        return std::to_string(rounds_) + " rounds x " +
               std::to_string(items_) + " items";
    }

    unsigned numThreads() const override { return threads_; }
    const AddressSpace &space() const override { return space_; }

    Generator<MemRef> thread(unsigned tid) override { return body(tid); }

    /** Ring buffer base of thread @p t (for the protection demo). */
    VAddr ringBase(unsigned t) const { return rings_[t].base(); }

  private:
    Generator<MemRef>
    body(unsigned tid)
    {
        const unsigned next = (tid + 1) % threads_;
        std::uint32_t bar = 0;
        for (unsigned round = 0; round < rounds_; ++round) {
            // Produce into my ring.
            co_yield MemRef::lock(tid);
            for (unsigned i = 0; i < items_; ++i)
                co_yield MemRef::write(rings_[tid].addr(i), 4);
            co_yield MemRef::unlock(tid);
            co_yield MemRef::barrier(bar++);
            // Consume my left neighbour's ring — every item written
            // by another processor: migratory coherence traffic.
            co_yield MemRef::lock(next);
            for (unsigned i = 0; i < items_; ++i)
                co_yield MemRef::read(rings_[next].addr(i), 4);
            co_yield MemRef::unlock(next);
            co_yield MemRef::barrier(bar++);
        }
    }

    unsigned threads_;
    unsigned rounds_;
    unsigned items_;
    AddressSpace space_;
    std::vector<SharedArray<std::uint64_t>> rings_;
};

} // namespace

int
main()
{
    Table t("custom pipeline under the five schemes");
    t.header({"scheme", "exec time", "remote reads", "upgrades",
              "TLB/DLB misses"});
    for (Scheme scheme : legacySchemes()) {
        MachineConfig cfg = baselineConfig(scheme, /*entries=*/8);
        Machine machine(cfg);
        PipelineWorkload workload(cfg.numNodes, /*rounds=*/16,
                                  /*itemsPerRound=*/128);
        const RunStats stats = machine.run(workload);
        t.row({schemeName(scheme), std::to_string(stats.execTime),
               std::to_string(stats.remoteReads),
               std::to_string(stats.upgrades),
               std::to_string(stats.tlbMisses)});
    }
    t.print(std::cout);

    // ---- Page protection (Section 4.3) ----
    std::cout << "-- Protection demo (V-COMA) --\n";
    MachineConfig cfg = baselineConfig(Scheme::VCOMA);
    Machine machine(cfg);
    PipelineWorkload workload(cfg.numNodes, 4, 32);
    machine.run(workload);

    const VAddr ring0 = workload.ringBase(0);
    const PageNum vpn = machine.layout().vpn(ring0);
    std::cout << "revoking write access to ring 0 (vpn " << vpn
              << ", home node " << machine.layout().homeNode(ring0)
              << ")\n";
    machine.protection().changeProtection(/*requester=*/1, vpn,
                                          ProtRead, /*now=*/0);
    std::cout << "update messages sent to block holders: "
              << machine.protection().updatesSent.value() << "\n";
    try {
        machine.access(2, RefType::Write, ring0, 1000);
    } catch (const ProtectionFault &fault) {
        std::cout << "write correctly faulted: " << fault.what()
                  << "\n";
    }
    machine.access(2, RefType::Read, ring0, 2000);
    std::cout << "read still allowed.\n";
    return 0;
}
