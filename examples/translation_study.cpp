/**
 * @file
 * Example: compare the five dynamic-address-translation schemes on
 * one workload — the paper's central experiment in miniature.
 *
 * For each scheme it runs the same kernel, then prints the shadow
 * TLB/DLB miss sweep (the Figure 8 series) and the classic three
 * effects: filtering (fewer accesses reach deeper TLBs), sharing
 * (DLB entries are never replicated) and prefetching (one DLB fill
 * serves every node).
 *
 * Usage: translation_study [WORKLOAD] [SCALE]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/machine.hh"
#include "tlb/shadow_bank.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

int
main(int argc, char **argv)
{
    const std::string workloadName = argc > 1 ? argv[1] : "FFT";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    // The paper's five placements, straight from the registry.
    const std::vector<Scheme> &schemes = legacySchemes();
    std::vector<RunStats> runs;

    for (Scheme scheme : schemes) {
        MachineConfig cfg = baselineConfig(scheme);
        cfg.timedTranslation = false;  // miss study
        Machine machine(cfg);
        WorkloadParams params;
        params.threads = cfg.numNodes;
        params.scale = scale;
        auto workload = makeWorkload(workloadName, params);
        runs.push_back(machine.run(*workload));
        std::cout << "ran " << schemeName(scheme) << " ("
                  << runs.back().totalRefs() << " refs)\n";
    }
    std::cout << "\n";

    // The Figure 8 series: misses per node vs TLB/DLB size.
    Table misses(workloadName +
                 ": translation misses per node vs size");
    std::vector<std::string> head{"size"};
    for (Scheme scheme : schemes)
        head.push_back(schemeName(scheme));
    misses.header(head);
    for (unsigned size : shadowSizes()) {
        std::vector<std::string> row{std::to_string(size)};
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            row.push_back(Table::num(
                runs[i].missesPerNode(size, 0, /*wb=*/true), 0));
        }
        misses.row(std::move(row));
    }
    misses.print(std::cout);

    // The filtering effect: accesses reaching each translation point.
    Table filtering(workloadName +
                    ": accesses reaching the translation point "
                    "(filtering effect)");
    filtering.header({"scheme", "accesses", "per processor ref (%)"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto &p = runs[i].shadowPoint(8, 0);
        const double pct = 100.0 *
                           static_cast<double>(p.accesses()) /
                           runs[i].totalRefs();
        filtering.row({schemeName(schemes[i]),
                       std::to_string(p.accesses()),
                       Table::num(pct, 1)});
    }
    filtering.print(std::cout);

    // The sharing/prefetching effects in one number: how big a
    // private L3 TLB must be to match an 8-entry shared DLB.
    const double target = runs.back().missesPerNode(8, 0, true);
    std::cout << "8-entry DLB misses/node: " << target << "\n";
    for (unsigned size : shadowSizes()) {
        const double l3 = runs[3].missesPerNode(size, 0, true);
        if (l3 <= target) {
            std::cout << "L3-TLB needs ~" << size
                      << " entries per node to match it\n";
            return 0;
        }
    }
    std::cout << "L3-TLB needs more than 512 entries to match it\n";
    return 0;
}
