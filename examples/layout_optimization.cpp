/**
 * @file
 * Example: virtual-address layout optimisation in V-COMA
 * (Section 5.3 / Section 6 of the paper).
 *
 * In V-COMA the virtual address alone decides which global page set a
 * page occupies and which node is its home. RAYTRACE's original
 * padding aligns every per-processor ray stack to a 32 KB boundary,
 * so the hot stack pages land on page colours that are multiples of 8
 * — concentrating their home-node duty on 4 of the 32 nodes. Aligning
 * the padding to one page (the paper's DLB/8/V2 variant) spreads the
 * colours and the homes.
 *
 * This example shows both layouts' home distribution and runs both
 * under V-COMA and under the physical COMA (L0-TLB), where round-robin
 * frame assignment makes the layout irrelevant.
 *
 * Usage: layout_optimization [SCALE]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "common/table.hh"
#include "sim/machine.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

RunStats
run(Scheme scheme, bool v2, double scale)
{
    MachineConfig cfg = baselineConfig(scheme, /*entries=*/8);
    Machine machine(cfg);
    WorkloadParams params;
    params.threads = cfg.numNodes;
    params.scale = scale;
    params.raytraceV2Layout = v2;
    auto workload = makeWorkload("RAYTRACE", params);
    return machine.run(*workload);
}

void
showHomeSpread(bool v2)
{
    MachineConfig cfg = baselineConfig(Scheme::VCOMA);
    const VAddrLayout layout(cfg);
    WorkloadParams params;
    params.threads = cfg.numNodes;
    params.scale = 0.25;
    params.raytraceV2Layout = v2;
    auto workload = makeWorkload("RAYTRACE", params);

    std::map<NodeId, unsigned> homes;
    for (const auto &seg : workload->space().segments()) {
        if (seg.name.rfind("raytrace.raystruct", 0) == 0)
            ++homes[layout.homeNode(seg.base)];
    }
    std::cout << (v2 ? "V2 (page-aligned)" : "V1 (32 KB-aligned)")
              << " stack hot pages are homed on " << homes.size()
              << " distinct nodes:";
    for (const auto &[node, count] : homes)
        std::cout << " n" << node << "x" << count;
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    std::cout << "-- Where do the ray-stack pages live? --\n";
    showHomeSpread(false);
    showHomeSpread(true);
    std::cout << "\n-- Execution time, both layouts, both machines --\n";

    Table t("RAYTRACE layout experiment (cycles; lower is better)");
    t.header({"machine", "layout", "exec time", "sync", "rem-stall"});
    struct Case
    {
        const char *machine;
        Scheme scheme;
        bool v2;
        const char *layout;
    };
    for (const Case &c :
         {Case{"physical COMA (TLB/8)", Scheme::L0, false, "V1"},
          Case{"physical COMA (TLB/8)", Scheme::L0, true, "V2"},
          Case{"V-COMA (DLB/8)", Scheme::VCOMA, false, "V1"},
          Case{"V-COMA (DLB/8)", Scheme::VCOMA, true, "V2"}}) {
        const RunStats stats = run(c.scheme, c.v2, scale);
        t.row({c.machine, c.layout, std::to_string(stats.execTime),
               std::to_string(stats.totalSync()),
               std::to_string(stats.totalRemStall())});
    }
    t.print(std::cout);

    std::cout
        << "The layout only matters where the virtual address\n"
           "controls placement: V-COMA. The physical machine's\n"
           "round-robin frames hide it — exactly the paper's point\n"
           "that V-COMA hands layout control to the compiler and\n"
           "programmer.\n";
    return 0;
}
