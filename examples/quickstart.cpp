/**
 * @file
 * Quickstart: build the paper's baseline V-COMA machine, run one
 * SPLASH-2-style workload, and print the headline statistics —
 * the 30-second tour of the library's public API.
 *
 * Usage: quickstart [WORKLOAD] [SCHEME] [SCALE]
 *   WORKLOAD: RADIX FFT FMM OCEAN RAYTRACE BARNES UNIFORM STRIDE
 *   SCHEME:   L0 L1 L2 L3 VCOMA
 *   SCALE:    problem-size multiplier (default 0.25 for a fast demo)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/machine.hh"
#include "translation/scheme.hh"
#include "translation/system_builder.hh"
#include "workloads/workload.hh"

using namespace vcoma;

namespace
{

} // namespace

int
main(int argc, char **argv)
{
    const std::string workloadName = argc > 1 ? argv[1] : "RADIX";
    const Scheme scheme = parseScheme(argc > 2 ? argv[2] : "VCOMA");
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

    // 1. Configure the paper's baseline machine (Section 5.1):
    //    32 nodes, 16 KB FLC / 64 KB SLC / 4 MB attraction memory,
    //    with an 8-entry fully associative TLB or DLB.
    MachineConfig cfg = baselineConfig(scheme, /*entries=*/8);
    Machine machine(cfg);

    // 2. Build a workload. The kernels execute their real algorithm
    //    and emit the shared-memory reference stream of each thread.
    WorkloadParams params;
    params.threads = cfg.numNodes;
    params.scale = scale;
    auto workload = makeWorkload(workloadName, params);

    // 3. Run and inspect the stats sheet.
    const RunStats stats = machine.run(*workload);

    std::cout << "workload   : " << stats.workload << " ("
              << stats.parameters << ")\n"
              << "scheme     : " << schemeName(stats.scheme) << "\n"
              << "shared data: " << stats.sharedBytes / 1024 << " KiB\n"
              << "references : " << stats.totalRefs() << "\n"
              << "exec time  : " << stats.execTime << " cycles\n";

    const double total =
        static_cast<double>(stats.totalBusy() + stats.totalSync() +
                            stats.totalLocStall() +
                            stats.totalRemStall() +
                            stats.totalXlatStall());
    auto pct = [&](double v) { return 100.0 * v / total; };
    std::cout << "breakdown  : busy " << pct(stats.totalBusy())
              << "%  sync " << pct(stats.totalSync()) << "%  loc "
              << pct(stats.totalLocStall()) << "%  rem "
              << pct(stats.totalRemStall()) << "%  xlat "
              << pct(stats.totalXlatStall()) << "%\n";

    std::cout << "translation: " << stats.tlbAccesses << " accesses, "
              << stats.tlbMisses << " misses ("
              << (stats.tlbAccesses
                      ? 100.0 * stats.tlbMisses / stats.tlbAccesses
                      : 0.0)
              << "% of accesses)\n"
              << "protocol   : " << stats.remoteReads << " remote reads, "
              << stats.remoteWrites << " remote writes, "
              << stats.upgrades << " upgrades, " << stats.injections
              << " injections\n";
    return 0;
}
